"""Ablation — routing order of the traffic flows.

The flow-by-flow greedy of Sec. VI routes in decreasing bandwidth order, the
standard choice inherited from [16]: big flows grab short direct links
first, small flows fill the gaps. The ablation compares it against
increasing-bandwidth and plain spec order.
"""

from conftest import echo

from repro.experiments.common import ExperimentResult, synthesize_cached

ORDERS = ("bandwidth_desc", "bandwidth_asc", "spec")


def _run(paper_config):
    table = ExperimentResult(
        name="Ablation: flow routing order",
        columns=["benchmark", "order", "valid_points", "best_power_mw",
                 "best_latency_cyc"],
    )
    for name in ("d26_media", "d35_bot"):
        for order in ORDERS:
            cfg = paper_config.with_(flow_order=order)
            result = synthesize_cached(name, "3d", cfg)
            best = result.best_power() if result.points else None
            table.add(
                benchmark=name, order=order,
                valid_points=len(result.points),
                best_power_mw=best.total_power_mw if best else None,
                best_latency_cyc=best.avg_latency_cycles if best else None,
            )
    return table


def test_ablation_flow_order(benchmark, paper_config):
    table = benchmark.pedantic(_run, args=(paper_config,), rounds=1, iterations=1)
    echo(table)
    by_key = {(r["benchmark"], r["order"]): r for r in table.rows}
    for name in ("d26_media", "d35_bot"):
        desc = by_key[(name, "bandwidth_desc")]
        assert desc["valid_points"] > 0
        # The default order is never substantially worse than alternatives
        # (it is the paper's design choice, not an accident).
        for order in ("bandwidth_asc", "spec"):
            other = by_key[(name, order)]
            if other["best_power_mw"] is not None:
                assert desc["best_power_mw"] <= other["best_power_mw"] * 1.10
