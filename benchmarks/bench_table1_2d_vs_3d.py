"""Table I — 2-D vs. 3-D comparison over the six benchmarks.

Paper shape: 3-D wins on every benchmark (38% power / 13% latency on
average); most of the saving is in *link* power (shorter wires), switch
power staying roughly comparable; the distributed designs gain most and the
pipelined ones least.
"""

from conftest import echo

from repro.bench.registry import TABLE1_BENCHMARKS
from repro.experiments.common import default_config_for
from repro.experiments.table1_2d_vs_3d import run_table1


def test_table1_full(benchmark):
    table = benchmark(run_table1, TABLE1_BENCHMARKS, None)
    echo(table)

    for row in table.rows:
        # 3-D wins on power, everywhere.
        assert row["total_3d_mw"] < row["total_2d_mw"], row["benchmark"]
        # The saving comes from the links.
        assert row["link_3d_mw"] < row["link_2d_mw"], row["benchmark"]
        # Latency does not regress.
        assert row["lat_3d_cyc"] <= row["lat_2d_cyc"] * 1.05, row["benchmark"]

    savings = {r["benchmark"]: r["power_saving_pct"] for r in table.rows}
    average = sum(savings.values()) / len(savings)
    # Paper: 38% average. Our substitute technology models land lower but
    # must show a solid double-digit average.
    assert average > 10.0

    # Ordering shape: a distributed design saves more than the weakest
    # pipelined one.
    assert max(savings["d36_4"], savings["d36_6"], savings["d36_8"]) > min(
        savings["d65_pipe"], savings["d38_tvopd"]
    )
