"""Fig. 1 — yield vs. TSV count, and the TSV budget -> max_ill derivation."""

from conftest import echo

from repro.experiments.fig01_yield import run_budget_table, run_yield_curves


def test_fig01_yield_curves(benchmark):
    table = benchmark(run_yield_curves)
    echo(table)
    # Shape: flat at low counts, rapidly decaying beyond the knee, and the
    # three processes strictly ordered (Fig. 1).
    for process in ("wafer-level-a", "wafer-level-b", "die-to-wafer"):
        ys = table.column(process)
        assert ys[0] == ys[1]            # flat region exists
        assert ys[-1] < ys[0] * 0.5      # strong decay by the end
    last = table.rows[-1]
    assert last["wafer-level-a"] > last["wafer-level-b"] > last["die-to-wafer"]


def test_fig01_budget_derivation(benchmark):
    table = benchmark(run_budget_table)
    echo(table)
    budgets = dict(zip(table.column("process"), table.column("max_ill")))
    # The paper's max_ill = 25 sits in the range spanned by the processes.
    assert budgets["die-to-wafer"] <= 25 <= budgets["wafer-level-a"]
