"""Ablation — Algorithm 3's soft thresholds (SOFT_INF).

Sec. VI: "By using these softer constraints, first, we facilitate the path
computation procedure to determine valid paths when compared to only using
the hard constraints." The ablation disables SOFT_INF and compares coverage
(how many switch counts produce valid designs) and best power.
"""

from conftest import echo

from repro.experiments.common import ExperimentResult, synthesize_cached


def _run(paper_config):
    table = ExperimentResult(
        name="Ablation: Algorithm 3 soft thresholds",
        columns=["benchmark", "soft", "valid_points", "best_power_mw", "max_ill_used"],
    )
    for name in ("d26_media", "d36_4"):
        for soft in (True, False):
            cfg = paper_config.with_(use_soft_thresholds=soft, max_ill=12)
            result = synthesize_cached(name, "3d", cfg)
            best = result.best_power() if result.points else None
            table.add(
                benchmark=name,
                soft=soft,
                valid_points=len(result.points),
                best_power_mw=best.total_power_mw if best else None,
                max_ill_used=best.metrics.max_ill_used if best else None,
            )
    return table


def test_ablation_soft_thresholds(benchmark, paper_config):
    table = benchmark(_run, paper_config)
    echo(table)
    by_key = {(r["benchmark"], r["soft"]): r for r in table.rows}
    for name in ("d26_media", "d36_4"):
        with_soft = by_key[(name, True)]
        without = by_key[(name, False)]
        # Soft thresholds never reduce coverage: at least as many valid
        # design points as hard-only constraint checking.
        assert with_soft["valid_points"] >= without["valid_points"]
        assert with_soft["valid_points"] > 0
