"""Figs. 21 & 22 — impact of the max_ill (TSV yield) constraint on D_36_4.

Paper shape: below a floor no topology exists at all; tightening the
constraint raises power and latency (more switches, layer-local clustering);
above ~24 the results saturate.
"""

from conftest import echo

from repro.experiments.max_ill_sweep import run_max_ill_sweep

SWEEP = (1, 2, 3, 4, 6, 10, 14, 18, 22, 25, 30)


def test_fig21_22_max_ill_sweep(benchmark, paper_config):
    table = benchmark(run_max_ill_sweep, "d36_4", SWEEP, paper_config)
    echo(table)

    feasible = [r for r in table.rows if r["power_mw"] is not None]
    infeasible = [r for r in table.rows if r["power_mw"] is None]
    assert feasible, "the sweep must contain feasible points"
    # Infeasibility floor: the very tightest constraints admit no topology.
    assert infeasible, "max_ill=1 must be infeasible"
    assert all(r["max_ill"] <= 4 for r in infeasible)

    # Tightest feasible point costs at least as much power as the loosest.
    tight = feasible[0]
    loose = feasible[-1]
    assert tight["power_mw"] >= loose["power_mw"] * 0.98
    assert tight["latency_cyc"] >= loose["latency_cyc"] * 0.95

    # Saturation: beyond max_ill=25 nothing changes.
    at_25 = [r for r in feasible if r["max_ill"] == 25][0]
    at_30 = [r for r in feasible if r["max_ill"] == 30][0]
    assert at_30["power_mw"] == at_25["power_mw"]

    # Every design respects its constraint.
    for row in feasible:
        assert row["max_ill_used"] <= row["max_ill"]
