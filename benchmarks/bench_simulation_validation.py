"""Extension — wormhole-simulation validation of the analytic latency model.

Not a paper figure: an added cross-check that the zero-load latency the
tables report is achievable by a cycle-level wormhole network carrying the
specified traffic.
"""

from conftest import echo

from repro.experiments.simulation_validation import run_simulation_validation

SCALES = (0.1, 0.3, 0.6, 1.0)


def test_simulation_validates_analytic_latency(benchmark, paper_config):
    table = benchmark.pedantic(
        run_simulation_validation,
        kwargs={
            "benchmark": "d26_media",
            "injection_scales": SCALES,
            "cycles": 12_000,
            "warmup": 1_200,
            "config": paper_config,
        },
        rounds=1, iterations=1,
    )
    echo(table)
    rows = table.rows
    assert len(rows) == len(SCALES)

    # Everything injected is (eventually) delivered at every load level the
    # synthesis admitted: the network sustains its specification.
    for row in rows:
        assert row["delivery_ratio"] > 0.90, row

    # Measured latency never beats the analytic zero-load bound, and at the
    # lightest load it sits within serialisation + per-link-register reach.
    light = rows[0]
    assert light["sim_latency_cyc"] >= light["analytic_cyc"]
    assert light["gap_cyc"] <= 10.0

    # Queueing: latency grows monotonically with offered load.
    latencies = [r["sim_latency_cyc"] for r in rows]
    assert all(a <= b + 0.25 for a, b in zip(latencies, latencies[1:]))
