"""Engine scaling — parallel sweep speedup + routing hot-path speedup.

Not a paper figure: this is the repo's own perf-trajectory gate. It runs
:func:`repro.engine.benchmark.run_engine_benchmark` (the same routine as
``python -m repro.cli bench``), echoes the numbers, writes
``BENCH_engine.json`` at the repo root, and asserts

* the optimised ``compute_paths`` beats the frozen naive baseline by
  >= 1.3x single-threaded while producing identical routes,
* a warm result-store rerun of the sweep beats the cold (computing) run by
  >= 5x wall-clock with every point served from disk and a merge identical
  to the storeless baseline — this gate is CPU-count independent (reading
  pickles is cheap everywhere),
* a *warm-adjacent* stage-cached sweep (metrics objective flipped over a
  populated stage cache) beats the uncached sweep at the same config by
  >= 5x wall-clock, executing only the invalidated metrics stage and
  merging identically to the uncached reference — all three legs are
  serial, so this gate is CPU-count independent too, and
* a 4-worker frequency × α grid sweep beats the serial baseline by
  >= 2x wall-clock — when the machine actually has >= 4 CPUs; on smaller
  boxes (CI containers pinned to one core) the speedup is recorded but
  only result *identity* is asserted, since a CPU-bound speedup beyond
  the core count is physically impossible, and
* arming the supervision knobs (retries + a never-firing per-task
  deadline) on the fault-free parallel sweep costs <= 5% wall-clock over
  the plain run (best-of-3 each), with identical merged points — and with
  one injected worker crash the campaign still completes, quarantining
  exactly the poison task with every survivor identical, and
* the durable campaign service loses and duplicates zero jobs across
  sequential, concurrent and interrupted-then-resumed runs of the same
  three campaigns, produces identical result digests on all three, and
  the interrupted run's journal-replay overhead stays <= 5% of the
  uninterrupted wall time.
"""

from pathlib import Path

import pytest

from repro.engine.benchmark import run_engine_benchmark

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_engine.json"

SWEEP_JOBS = 4
SWEEP_SPEEDUP_FLOOR = 2.0
PATHS_SPEEDUP_FLOOR = 1.3
CACHE_SPEEDUP_FLOOR = 5.0
STAGE_CACHE_SPEEDUP_FLOOR = 5.0
SUPERVISION_OVERHEAD_CEILING_PCT = 5.0
SERVICE_REPLAY_OVERHEAD_CEILING_PCT = 5.0


def _run():
    return run_engine_benchmark(
        quick=True, jobs=SWEEP_JOBS, output=str(OUTPUT), log=print
    )


def test_engine_scaling(benchmark):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(f"cpu_count={report['cpu_count']} "
          f"sweep={report['sweep']['speedup']}x "
          f"compute_paths={report['compute_paths']['speedup']}x")

    # Parallel and serial sweeps must merge to identical design points.
    assert report["sweep"]["identical_points"]
    assert report["sweep"]["valid_points"] > 0
    assert OUTPUT.exists()

    # Routing hot path: single-threaded, so the floor holds everywhere.
    paths = report["compute_paths"]
    assert paths["routes_identical"]
    assert paths["speedup"] >= PATHS_SPEEDUP_FLOOR, (
        f"compute_paths speedup {paths['speedup']}x below "
        f"{PATHS_SPEEDUP_FLOOR}x"
    )

    # Warm-cache rerun: every point served from the store, identical merge,
    # and at least 5x cheaper than computing. Unpickling is cheap on any
    # machine, so this floor holds regardless of CPU count.
    cache = report["cache"]
    assert cache["identical_results"]
    assert cache["warm_hits"] == cache["grid_points"]
    assert cache["speedup"] >= CACHE_SPEEDUP_FLOOR, (
        f"warm-cache speedup {cache['speedup']}x below {CACHE_SPEEDUP_FLOOR}x"
    )

    # Stage memoization: the warm-adjacent sweep re-runs only the metrics
    # stage (the only one the flipped objective invalidates), merges
    # identically to the uncached reference, and clears the floor. Every
    # leg is serial, so the floor holds regardless of CPU count.
    stage_cache = report["stage_cache"]
    assert stage_cache["identical_results"]
    assert stage_cache["cold_identical_results"]
    assert stage_cache["delta_stages_only"], (
        f"warm-adjacent sweep missed stages {stage_cache['missed_stages']} "
        "(expected only the invalidated 'metrics' stage)"
    )
    assert stage_cache["speedup"] >= STAGE_CACHE_SPEEDUP_FLOOR, (
        f"warm-adjacent stage-cache speedup {stage_cache['speedup']}x "
        f"below {STAGE_CACHE_SPEEDUP_FLOOR}x"
    )

    # Supervision: arming retries + deadlines on a fault-free sweep must be
    # near-free, and a crashed worker must not take the campaign with it.
    sup = report["supervision"]
    assert sup["identical_results"]
    assert sup["overhead_pct"] <= SUPERVISION_OVERHEAD_CEILING_PCT, (
        f"supervision overhead {sup['overhead_pct']}% above "
        f"{SUPERVISION_OVERHEAD_CEILING_PCT}%"
    )
    recovery = sup["recovery"]
    assert recovery["quarantined"] == 1
    assert recovery["poison_attributed"]
    assert recovery["survivors_identical"]

    # Campaign service: durability must be lossless and near-free. The
    # zero-loss gates are absolute; the replay ceiling covers journal
    # replay + spec recompile + store hits on the resumed half.
    service = report["service"]
    assert service["lost_jobs"] == 0, (
        f"{service['lost_jobs']} job(s) lost by the campaign service"
    )
    assert service["duplicated_jobs"] == 0, (
        f"{service['duplicated_jobs']} job(s) completed more than once"
    )
    assert service["digests_identical"], (
        "sequential / concurrent / resumed campaign runs disagree"
    )
    assert service["replay_overhead_pct"] <= \
        SERVICE_REPLAY_OVERHEAD_CEILING_PCT, (
            f"service replay overhead {service['replay_overhead_pct']}% "
            f"above {SERVICE_REPLAY_OVERHEAD_CEILING_PCT}%"
        )

    # Sweep scaling: only meaningful when the workers have cores to run on.
    cpus = report["cpu_count"] or 1
    if cpus >= SWEEP_JOBS:
        assert report["sweep"]["speedup"] >= SWEEP_SPEEDUP_FLOOR, (
            f"sweep speedup {report['sweep']['speedup']}x on "
            f"{report['sweep']['jobs']} workers ({cpus} CPUs) below "
            f"{SWEEP_SPEEDUP_FLOOR}x"
        )
    else:
        pytest.skip(
            f"only {cpus} CPU(s) visible: recorded sweep speedup "
            f"{report['sweep']['speedup']}x without asserting the "
            f"{SWEEP_SPEEDUP_FLOOR}x floor (needs >= {SWEEP_JOBS} CPUs)"
        )
