"""Fig. 17 — Phase 2 power relative to Phase 1 across the benchmarks.

Paper: "Phase 1 can generate topologies that lead to a 40% reduction in NoC
power consumption, when compared to Phase 2" (i.e. phase2/phase1 up to
~1.67x), while Phase 2 meets much tighter inter-layer link constraints.
"""

from conftest import echo

from repro.experiments.phase_comparison import run_phase_comparison

#: A representative subset keeps the harness runtime reasonable; pass the
#: full TABLE1_BENCHMARKS tuple to sweep everything.
BENCHMARKS = ("d26_media", "d36_4", "d35_bot")


def test_fig17_phase1_vs_phase2(benchmark, paper_config):
    table = benchmark(run_phase_comparison, BENCHMARKS, paper_config)
    echo(table)
    ratios = [r["ratio"] for r in table.rows if r["ratio"] is not None]
    assert ratios, "at least one benchmark must synthesize in both phases"
    # Phase 2 never meaningfully beats Phase 1 (it is a restriction) and
    # costs extra power on cross-layer-heavy designs.
    assert all(r >= 0.95 for r in ratios)
    assert max(ratios) > 1.05
    # And Phase 2 uses fewer vertical links wherever both succeeded.
    for row in table.rows:
        if row["vlinks_p1"] is not None and row["vlinks_p2"] is not None:
            assert row["vlinks_p2"] <= row["vlinks_p1"]
