"""Micro-benchmarks of the substrates (runtime characterisation).

The paper reports "it takes a few seconds to build a topology with few
switches" on 2009 hardware; these micro-benchmarks time the pieces that
dominate: the min-cut partitioner, the placement LP, the floorplanner, one
full single-point synthesis, and the wormhole simulator.
"""

import pytest

from repro.core.assignment import assignment_from_blocks
from repro.core.config import SynthesisConfig
from repro.core.paths import build_topology_skeleton, compute_paths
from repro.core.placement import optimise_switch_positions
from repro.core.synthesis import SunFloor3D
from repro.bench.registry import get_benchmark
from repro.floorplan.annealer import anneal_floorplan
from repro.graphs.comm_graph import build_comm_graph
from repro.graphs.partition import kway_min_cut
from repro.models.library import default_library
from repro.noc.simulator import WormholeSimulator
from repro.rng import make_rng


@pytest.fixture(scope="module")
def d26():
    return get_benchmark("d26_media")


def test_partitioner_26_cores(benchmark, d26):
    graph = build_comm_graph(d26.core_spec_3d, d26.comm_spec)
    weights = graph.symmetric_bandwidth()
    blocks = benchmark(kway_min_cut, graph.n, weights, 6, seed=0)
    assert len(blocks) == 6


def test_placement_lp_26_cores(benchmark, d26):
    cfg = SynthesisConfig(max_ill=25)
    tool = SunFloor3D(d26.core_spec_3d, d26.comm_spec, config=cfg)
    graph = tool.graph
    weights = graph.symmetric_bandwidth()
    blocks = kway_min_cut(graph.n, weights, 6, seed=0)
    assignment = assignment_from_blocks(blocks, graph, "mean", "phase1")
    lib = default_library()
    topo = build_topology_skeleton(assignment, graph, lib, cfg, tool._core_centers)
    compute_paths(topo, graph, lib, cfg, tool._core_centers)
    die_w, die_h = tool._die_bounds

    obj = benchmark(
        optimise_switch_positions, topo, tool._core_centers, die_w, die_h
    )
    assert obj > 0


def test_floorplanner_16_blocks(benchmark):
    rng = make_rng(0, "bench-floorplan")
    widths = [rng.uniform(0.8, 2.0) for _ in range(16)]
    heights = [rng.uniform(0.8, 2.0) for _ in range(16)]
    result = benchmark(anneal_floorplan, widths, heights, None, None,
                       seed=1, moves=2000)
    assert result.area > 0


def test_single_point_synthesis_d26(benchmark, d26):
    cfg = SynthesisConfig(max_ill=25, switch_count_range=(6, 6))

    def run():
        return SunFloor3D(d26.core_spec_3d, d26.comm_spec, config=cfg).synthesize()

    result = benchmark(run)
    assert not result.is_empty


def test_wormhole_simulator_10k_cycles(benchmark, d26):
    cfg = SynthesisConfig(max_ill=25, switch_count_range=(6, 6))
    point = SunFloor3D(
        d26.core_spec_3d, d26.comm_spec, config=cfg
    ).synthesize().best_power()
    sim = WormholeSimulator(point.topology, seed=0)
    stats = benchmark.pedantic(
        sim.run, kwargs={"cycles": 10_000, "warmup": 1_000}, rounds=1, iterations=1
    )
    assert stats.packets_delivered > 0
