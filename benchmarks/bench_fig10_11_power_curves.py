"""Figs. 10 & 11 — NoC power vs. switch count for D_26_media (2-D and 3-D).

Paper claims reproduced in shape:
  * only switch counts >= 3 admit valid 400 MHz topologies (switch-size
    limit, Sec. VIII-A);
  * switch power grows with the switch count while core-to-switch link
    power tends to fall (the trade-off of Sec. IV);
  * the 3-D curve sits below the 2-D curve at the best points (24% for
    this benchmark in the paper).
"""

from conftest import echo

from repro.experiments.common import synthesize_cached
from repro.experiments.power_curves import run_2d_vs_3d_best, run_power_vs_switches


def test_fig10_power_vs_switches_2d(benchmark, paper_config):
    table = benchmark(run_power_vs_switches, "d26_media", "2d", paper_config)
    echo(table)
    counts = table.column("switches")
    assert min(counts) >= 3, "1-2 switch designs must fail the 400 MHz size limit"
    first, last = table.rows[0], table.rows[-1]
    assert last["switch_mw"] > first["switch_mw"]


def test_fig11_power_vs_switches_3d(benchmark, paper_config):
    table = benchmark(run_power_vs_switches, "d26_media", "3d", paper_config)
    echo(table)
    counts = table.column("switches")
    assert min(counts) >= 3
    # Every 3-D point satisfies the max_ill constraint by construction.
    result = synthesize_cached("d26_media", "3d", paper_config)
    for p in result.points:
        assert p.metrics.max_ill_used <= paper_config.max_ill


def test_fig10_11_3d_beats_2d(benchmark, paper_config):
    table = benchmark(run_2d_vs_3d_best, "d26_media", paper_config)
    echo(table)
    saving = table.rows[1]["saving_pct"]
    # Paper: 24% for D_26_media. Shape check: a double-digit saving.
    assert saving > 10.0
