"""Fig. 12 — wire-length distributions: "the 2-D design has many long wires"."""

from conftest import echo

from repro.experiments.common import synthesize_cached
from repro.experiments.wirelength import run_wirelength_distribution
from repro.noc.wire_stats import length_stats


def test_fig12_wirelength_distribution(benchmark, paper_config):
    table = benchmark(run_wirelength_distribution, "d26_media", 0.5, paper_config)
    echo(table)

    p2 = synthesize_cached("d26_media", "2d", paper_config).best_power()
    p3 = synthesize_cached("d26_media", "3d", paper_config).best_power()
    mean2, max2, _ = length_stats(p2.metrics.wire_lengths_mm)
    mean3, max3, _ = length_stats(p3.metrics.wire_lengths_mm)

    # The 2-D design has longer wires on average and a longer tail.
    assert mean2 > mean3
    assert max2 >= max3

    # The long-wire tail (everything in the upper half of the bins) is
    # heavier in 2-D.
    half = len(table.rows) // 2
    tail2 = sum(r["links_2d"] for r in table.rows[half:])
    tail3 = sum(r["links_3d"] for r in table.rows[half:])
    assert tail2 >= tail3
