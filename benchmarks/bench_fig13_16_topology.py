"""Figs. 13-16 — the synthesized D_26_media topology and floorplan.

Fig. 13: best Phase 1 topology (cores may attach to switches in any layer).
Fig. 14: best Phase 2 (layer-by-layer) topology — "it can be seen from the
figure that the algorithm used a lot less inter-layer links", at a latency
price ("cores on different layers will have a zero load latency of at least
two cycles as they have to go through two switches").
Fig. 15: the resulting 3-D floorplan with the network components inserted.
"""

from conftest import echo

from repro.experiments.common import synthesize_cached
from repro.experiments.topology_report import (
    run_floorplan_report,
    run_topology_report,
)


def test_fig13_phase1_topology(benchmark, paper_config):
    table = benchmark(run_topology_report, "d26_media", "phase1", paper_config)
    echo(table)
    assert len(table.rows) >= 3
    # Every core appears exactly once across the switches.
    all_cores = ",".join(
        str(r["cores"]) for r in table.rows if r["cores"] != "(indirect)"
    ).split(",")
    assert len(all_cores) == 26
    assert len(set(all_cores)) == 26


def test_fig14_phase2_topology_fewer_vertical_links(benchmark, paper_config):
    table = benchmark(
        run_topology_report, "d26_media", "phase2", paper_config
    )
    echo(table)
    p1 = synthesize_cached(
        "d26_media", "3d", paper_config.with_(phase="phase1")
    ).best_power()
    p2 = synthesize_cached(
        "d26_media", "3d", paper_config.with_(phase="phase2")
    ).best_power()
    # The Fig. 13-vs-14 claim: far fewer inter-layer links in Phase 2.
    assert p2.metrics.num_vertical_links < p1.metrics.num_vertical_links
    # And the latency price: cross-layer flows traverse >= 2 switches.
    assert p2.avg_latency_cycles >= p1.avg_latency_cycles


def test_fig15_floorplan_legal_and_complete(benchmark, paper_config):
    table = benchmark(run_floorplan_report, "d26_media", paper_config)
    echo(table)
    point = synthesize_cached("d26_media", "3d", paper_config).best_power()
    assert point.floorplan.is_legal()
    names = set(point.floorplan.by_name(c.name).name
                for c in point.floorplan)
    # All 26 cores plus at least the switches are placed.
    kinds = [c.kind for c in point.floorplan]
    assert kinds.count("core") == 26
    assert kinds.count("switch") == point.switch_count
