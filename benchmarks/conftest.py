"""Shared configuration for the benchmark harness.

Every module regenerates one table/figure of the paper (see DESIGN.md
Sec. 4): the benchmarked callable runs the experiment, the assertions check
the *shape* of the result against the paper's claims, and the rendered table
is echoed so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
paper's rows.

Synthesis runs are memoised per process (repro.experiments.common), so a
figure that reuses another figure's design points does not pay twice.
"""

from __future__ import annotations

import pytest

from repro.core.config import SynthesisConfig

#: Evaluation-wide configuration (Sec. VIII-A): 400 MHz, 32-bit links,
#: max_ill 25. Switch sweeps sized per benchmark by default_config_for.
PAPER_MAX_ILL = 25


@pytest.fixture(scope="session")
def paper_config() -> SynthesisConfig:
    return SynthesisConfig(max_ill=PAPER_MAX_ILL, switch_count_range=(3, 14))


def echo(table) -> None:
    """Print a rendered experiment table (visible with -s)."""
    print()
    print(table.to_text())
