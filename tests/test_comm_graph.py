"""Communication graph (repro.graphs.comm_graph)."""

import pytest

from repro.errors import SpecError
from repro.graphs.comm_graph import build_comm_graph
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec


@pytest.fixture
def graph():
    cores = CoreSpec(cores=[
        Core("A", 1, 1, 0, 0, 0),
        Core("B", 1, 1, 2, 0, 0),
        Core("C", 1, 1, 0, 0, 1),
    ])
    comm = CommSpec(flows=[
        TrafficFlow("A", "B", 100, 8),
        TrafficFlow("B", "C", 300, 4),
        TrafficFlow("C", "A", 200, 6),
    ])
    return build_comm_graph(cores, comm)


class TestBuild:
    def test_vertices_match_core_order(self, graph):
        assert graph.n == 3
        assert graph.names == ["A", "B", "C"]
        assert graph.layers == [0, 0, 1]

    def test_edges(self, graph):
        assert graph.bandwidth(0, 1) == 100
        assert graph.bandwidth(1, 0) == 0.0
        assert graph.latency(1, 2) == 4
        assert graph.latency(2, 1) == float("inf")

    def test_aggregates(self, graph):
        assert graph.max_bandwidth == 300
        assert graph.min_latency == 4
        assert graph.num_layers == 2

    def test_flows_deterministic_order(self, graph):
        keys = [(i, j) for i, j, _ in graph.flows()]
        assert keys == sorted(keys)

    def test_unknown_endpoint_rejected(self):
        cores = CoreSpec(cores=[Core("A", 1, 1)])
        comm = CommSpec(flows=[TrafficFlow("A", "Z", 100, 8)])
        with pytest.raises(SpecError):
            build_comm_graph(cores, comm)

    def test_symmetric_bandwidth(self, graph):
        sym = graph.symmetric_bandwidth()
        assert sym[(0, 1)] == 100
        assert sym[(0, 2)] == 200
        assert sym[(1, 2)] == 300

    def test_index_of(self, graph):
        assert graph.index_of("C") == 2
        with pytest.raises(SpecError):
            graph.index_of("Z")

    def test_to_networkx(self, graph):
        g = graph.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 3
        assert g.edges[(0, 1)]["bandwidth"] == 100
        assert g.nodes[2]["layer"] == 1
