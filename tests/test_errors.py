"""Exception hierarchy (repro.errors)."""

import pytest

from repro.errors import (
    FloorplanError,
    InfeasibleLPError,
    LPError,
    PathComputationError,
    ReproError,
    SpecError,
    SynthesisError,
    UnboundedLPError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        SpecError, SynthesisError, PathComputationError,
        LPError, InfeasibleLPError, UnboundedLPError, FloorplanError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_path_error_is_synthesis_error(self):
        # Callers catching SynthesisError also catch routing failures.
        assert issubclass(PathComputationError, SynthesisError)

    def test_lp_specialisations(self):
        assert issubclass(InfeasibleLPError, LPError)
        assert issubclass(UnboundedLPError, LPError)
        assert not issubclass(InfeasibleLPError, UnboundedLPError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise PathComputationError("no path")
