"""Experiment runners (repro.experiments).

These run the real experiment code paths on reduced configurations (narrow
switch-count sweeps, the cached d26_media benchmark) so the whole file stays
fast while still exercising every runner end to end.
"""

import pytest

from repro.core.config import SynthesisConfig
from repro.experiments import fig01_yield
from repro.experiments.common import (
    ExperimentResult,
    default_config_for,
    synthesize_cached,
)
from repro.experiments.floorplan_comparison import (
    run_area_vs_switches,
    run_best_point_comparison,
)
from repro.experiments.max_ill_sweep import run_max_ill_sweep
from repro.experiments.mesh_comparison import run_mesh_comparison
from repro.experiments.phase_comparison import run_phase_comparison
from repro.experiments.power_curves import run_2d_vs_3d_best, run_power_vs_switches
from repro.experiments.table1_2d_vs_3d import run_table1
from repro.experiments.topology_report import (
    run_floorplan_report,
    run_topology_report,
)
from repro.experiments.wirelength import run_wirelength_distribution

SMALL = SynthesisConfig(max_ill=25, switch_count_range=(3, 6))


class TestExperimentResult:
    def test_table_rendering(self):
        t = ExperimentResult(name="t", columns=["a", "b"], notes="note")
        t.add(a=1, b=2.5)
        t.add(a=None, b="x")
        text = t.to_text()
        assert "== t ==" in text and "note" in text
        assert "2.50" in text and "-" in text

    def test_column_accessor(self):
        t = ExperimentResult(name="t", columns=["a"])
        t.add(a=1)
        t.add(a=2)
        assert t.column("a") == [1, 2]


class TestCommon:
    def test_default_config_scales_with_size(self):
        small = default_config_for("d26_media")
        large = default_config_for("d65_pipe")
        assert large.switch_count_range[1] > small.switch_count_range[1]

    def test_cache_returns_same_object(self):
        a = synthesize_cached("d26_media", "3d", SMALL)
        b = synthesize_cached("d26_media", "3d", SMALL)
        assert a is b

    def test_bad_dims_rejected(self):
        from repro.errors import SpecError

        with pytest.raises(SpecError):
            synthesize_cached("d26_media", "4d", SMALL)


class TestYieldExperiment:
    def test_curves_monotone(self):
        table = fig01_yield.run_yield_curves()
        for process in ("wafer-level-a", "wafer-level-b", "die-to-wafer"):
            ys = table.column(process)
            assert all(a >= b - 1e-12 for a, b in zip(ys, ys[1:]))

    def test_budget_table(self):
        table = fig01_yield.run_budget_table()
        budgets = dict(zip(table.column("process"), table.column("max_ill")))
        assert budgets["wafer-level-a"] > budgets["die-to-wafer"]


class TestPowerCurves:
    def test_fig10_11_rows(self):
        t3 = run_power_vs_switches("d26_media", "3d", SMALL)
        t2 = run_power_vs_switches("d26_media", "2d", SMALL)
        assert len(t3.rows) >= 2 and len(t2.rows) >= 2
        for row in t3.rows + t2.rows:
            assert row["total_mw"] == pytest.approx(
                row["switch_mw"] + row["sw2sw_link_mw"] + row["core2sw_link_mw"]
            )

    def test_3d_beats_2d_at_best_point(self):
        table = run_2d_vs_3d_best("d26_media", SMALL)
        assert table.rows[1]["saving_pct"] > 0


class TestWirelength:
    def test_2d_has_longer_tail(self):
        table = run_wirelength_distribution("d26_media", config=SMALL)
        # Mean wire length of 2-D must exceed 3-D's (the Fig. 12 claim).
        assert "2-D mean" in table.notes
        total2 = sum(table.column("links_2d"))
        total3 = sum(table.column("links_3d"))
        assert total2 > 0 and total3 > 0


class TestTopologyReport:
    def test_phase1_report(self):
        table = run_topology_report("d26_media", "phase1", SMALL)
        assert len(table.rows) >= 3
        cores_listed = ",".join(str(r["cores"]) for r in table.rows)
        assert "ARM" in cores_listed

    def test_floorplan_report_legal(self):
        table = run_floorplan_report("d26_media", SMALL)
        kinds = set(table.column("kind"))
        assert "core" in kinds and "switch" in kinds


class TestComparisons:
    def test_phase_comparison_row(self):
        table = run_phase_comparison(["d26_media"], SMALL)
        row = table.rows[0]
        assert row["phase1_mw"] is not None
        if row["phase2_mw"] is not None:
            assert row["ratio"] >= 0.9  # phase2 not meaningfully cheaper

    def test_table1_single_benchmark(self):
        table = run_table1(["d36_4"], SMALL)
        row = table.rows[0]
        assert row["total_3d_mw"] < row["total_2d_mw"]
        assert "average power saving" in table.notes

    def test_max_ill_sweep_shape(self):
        table = run_max_ill_sweep("d26_media", (2, 25), SMALL)
        assert len(table.rows) == 2
        powers = [r["power_mw"] for r in table.rows if r["power_mw"] is not None]
        if len(powers) == 2:
            assert powers[1] <= powers[0] * 1.05  # looser constraint not worse

    def test_mesh_comparison(self):
        table = run_mesh_comparison(["d26_media"], SMALL)
        row = table.rows[0]
        assert row["power_saving_pct"] > 0

    @pytest.mark.slow  # synthesizes with the constrained (annealing) floorplanner
    def test_floorplan_comparison(self):
        t18 = run_area_vs_switches("d26_media", SMALL)
        assert len(t18.rows) >= 2
        t19 = run_best_point_comparison(["d26_media"], SMALL)
        row = t19.rows[0]
        assert row["custom_area_mm2"] is not None
        assert row["constrained_area_mm2"] is not None
