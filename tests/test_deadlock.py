"""Channel-dependency-graph deadlock checks (repro.noc.deadlock)."""

from hypothesis import given, settings, strategies as st

from repro.noc.deadlock import ChannelDependencyGraph
from repro.spec.comm_spec import MessageType


class TestCycleDetection:
    def test_empty_graph_free(self):
        cdg = ChannelDependencyGraph()
        assert cdg.is_deadlock_free()

    def test_single_path_no_cycle(self):
        cdg = ChannelDependencyGraph()
        assert not cdg.creates_cycle([1, 2, 3], MessageType.REQUEST)
        cdg.add_path([1, 2, 3], MessageType.REQUEST)
        assert cdg.is_deadlock_free()

    def test_closing_cycle_detected(self):
        cdg = ChannelDependencyGraph()
        cdg.add_path([1, 2], MessageType.REQUEST)
        cdg.add_path([2, 3], MessageType.REQUEST)
        assert cdg.creates_cycle([3, 1], MessageType.REQUEST)

    def test_tentative_check_does_not_mutate(self):
        cdg = ChannelDependencyGraph()
        cdg.add_path([1, 2], MessageType.REQUEST)
        cdg.add_path([2, 3], MessageType.REQUEST)
        assert cdg.creates_cycle([3, 1], MessageType.REQUEST)
        # The offending path was NOT added: still acyclic.
        assert cdg.is_deadlock_free()
        assert cdg.edges(MessageType.REQUEST) == [(1, 2), (2, 3)]

    def test_self_dependency_is_cycle(self):
        cdg = ChannelDependencyGraph()
        assert cdg.creates_cycle([4, 4], MessageType.REQUEST)

    def test_message_classes_independent(self):
        """Message-dependent deadlock removal: request and response
        dependencies live in separate CDGs."""
        cdg = ChannelDependencyGraph()
        cdg.add_path([1, 2], MessageType.REQUEST)
        cdg.add_path([2, 3], MessageType.REQUEST)
        # The same physical cycle through the RESPONSE class is fine.
        assert not cdg.creates_cycle([3, 1], MessageType.RESPONSE)
        cdg.add_path([3, 1], MessageType.RESPONSE)
        assert cdg.is_deadlock_free()

    def test_long_cycle_detected(self):
        cdg = ChannelDependencyGraph()
        for a, b in [(1, 2), (2, 3), (3, 4), (4, 5)]:
            cdg.add_path([a, b], MessageType.REQUEST)
        assert cdg.creates_cycle([5, 1], MessageType.REQUEST)
        assert not cdg.creates_cycle([1, 5], MessageType.REQUEST)

    def test_single_link_path_no_edges(self):
        cdg = ChannelDependencyGraph()
        assert not cdg.creates_cycle([7], MessageType.REQUEST)
        cdg.add_path([7], MessageType.REQUEST)
        assert cdg.edges(MessageType.REQUEST) == []

    def test_classes_listing(self):
        cdg = ChannelDependencyGraph()
        cdg.add_path([1, 2], MessageType.REQUEST)
        cdg.add_path([1, 2], MessageType.RESPONSE)
        assert len(cdg.classes()) == 2


class TestCycleProperties:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_acyclic_insertion_order_invariant(self, data):
        """Paths accepted one by one (skipping cycle-closers) always leave
        the CDG acyclic — the core safety invariant of route computation."""
        n_paths = data.draw(st.integers(min_value=1, max_value=15))
        cdg = ChannelDependencyGraph()
        for _ in range(n_paths):
            length = data.draw(st.integers(min_value=1, max_value=5))
            path = [
                data.draw(st.integers(min_value=0, max_value=9))
                for _ in range(length)
            ]
            if not cdg.creates_cycle(path, MessageType.REQUEST):
                cdg.add_path(path, MessageType.REQUEST)
            assert cdg.is_deadlock_free()
