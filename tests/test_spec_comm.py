"""Communication specification (repro.spec.comm_spec)."""

import pytest

from repro.errors import SpecError
from repro.spec.comm_spec import CommSpec, MessageType, TrafficFlow


class TestTrafficFlow:
    def test_valid_flow(self):
        flow = TrafficFlow("A", "B", 100.0, 8.0)
        assert flow.endpoints == ("A", "B")
        assert flow.message_type is MessageType.REQUEST

    def test_rejects_self_loop(self):
        with pytest.raises(SpecError):
            TrafficFlow("A", "A", 100.0, 8.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(SpecError):
            TrafficFlow("A", "B", 0.0, 8.0)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(SpecError):
            TrafficFlow("A", "B", 100.0, -1.0)

    def test_scaled(self):
        flow = TrafficFlow("A", "B", 100.0, 8.0)
        assert flow.scaled(2.5).bandwidth == pytest.approx(250.0)
        assert flow.bandwidth == pytest.approx(100.0)


class TestMessageType:
    def test_parse(self):
        assert MessageType.parse("request") is MessageType.REQUEST
        assert MessageType.parse(" Response ") is MessageType.RESPONSE

    def test_parse_rejects_unknown(self):
        with pytest.raises(SpecError):
            MessageType.parse("bogus")


class TestCommSpec:
    def _spec(self):
        return CommSpec(flows=[
            TrafficFlow("A", "B", 100.0, 8.0),
            TrafficFlow("B", "C", 300.0, 4.0),
            TrafficFlow("C", "A", 200.0, 12.0, MessageType.RESPONSE),
        ])

    def test_rejects_duplicate_pair(self):
        with pytest.raises(SpecError):
            CommSpec(flows=[
                TrafficFlow("A", "B", 100.0, 8.0),
                TrafficFlow("A", "B", 50.0, 9.0),
            ])

    def test_aggregates(self):
        spec = self._spec()
        assert spec.max_bandwidth == pytest.approx(300.0)
        assert spec.min_latency == pytest.approx(4.0)
        assert spec.total_bandwidth == pytest.approx(600.0)

    def test_aggregates_empty_raise(self):
        with pytest.raises(SpecError):
            CommSpec().max_bandwidth
        with pytest.raises(SpecError):
            CommSpec().min_latency

    def test_core_names_first_seen_order(self):
        assert self._spec().core_names == ["A", "B", "C"]

    def test_lookups(self):
        spec = self._spec()
        assert spec.flow_between("A", "B").bandwidth == pytest.approx(100.0)
        assert spec.flow_between("B", "A") is None
        assert len(spec.flows_from("B")) == 1
        assert len(spec.flows_to("A")) == 1

    def test_scaled(self):
        spec = self._spec().scaled(0.5)
        assert spec.total_bandwidth == pytest.approx(300.0)
        with pytest.raises(SpecError):
            self._spec().scaled(0.0)

    def test_sorted_by_bandwidth_descending_deterministic(self):
        ordered = self._spec().sorted_by_bandwidth()
        assert [f.bandwidth for f in ordered] == [300.0, 200.0, 100.0]
