"""2-D synthesis flow (repro.core.synthesis2d, the [16] baseline)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.synthesis2d import synthesize_2d
from repro.errors import SpecError


class TestSynthesize2d:
    def test_runs_on_single_layer(self, single_layer_specs):
        core_spec, comm_spec = single_layer_specs
        result = synthesize_2d(core_spec, comm_spec)
        assert not result.is_empty
        best = result.best_power()
        assert best.floorplan.num_layers == 1

    def test_no_vertical_links_ever(self, single_layer_specs):
        core_spec, comm_spec = single_layer_specs
        result = synthesize_2d(core_spec, comm_spec)
        for p in result.points:
            assert p.metrics.num_vertical_links == 0
            assert p.metrics.max_ill_used == 0
            assert p.metrics.tsv_macro_area_mm2 == 0.0

    def test_rejects_multi_layer_spec(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        with pytest.raises(SpecError, match="single-layer"):
            synthesize_2d(core_spec, comm_spec)

    def test_phase_forced_to_phase1(self, single_layer_specs):
        core_spec, comm_spec = single_layer_specs
        result = synthesize_2d(
            core_spec, comm_spec, config=SynthesisConfig(phase="phase2")
        )
        assert all(p.phase == "phase1" for p in result.points)

    def test_config_passthrough(self, single_layer_specs):
        core_spec, comm_spec = single_layer_specs
        cfg = SynthesisConfig(switch_count_range=(2, 3))
        result = synthesize_2d(core_spec, comm_spec, config=cfg)
        assert result.points
        assert all(2 <= p.assignment.num_switches <= 3 for p in result.points)
