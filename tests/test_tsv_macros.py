"""TSV macro placement (repro.floorplan.tsv_macros, paper Sec. III)."""

import pytest

from repro.floorplan.geometry import Rect
from repro.floorplan.placement import ChipFloorplan, PlacedComponent
from repro.floorplan.tsv_macros import (
    VerticalLinkSpec,
    count_explicit_macros,
    place_tsv_macros,
)
from repro.models.tsv_model import TsvModel


def _fp(num_layers=3):
    fp = ChipFloorplan()
    for layer in range(num_layers):
        fp.add(PlacedComponent(f"core{layer}", "core", Rect(0, 0, 2, 2), layer))
        fp.add(PlacedComponent(f"mem{layer}", "core", Rect(2.5, 0, 2, 2), layer))
    return fp


class TestVerticalLinkSpec:
    def test_intermediate_layers(self):
        spec = VerticalLinkSpec("l", 0, 3, (1.0, 1.0))
        assert spec.intermediate_layers == [1, 2]

    def test_adjacent_link_has_none(self):
        assert VerticalLinkSpec("l", 1, 2, (0, 0)).intermediate_layers == []

    def test_rejects_inverted_layers(self):
        with pytest.raises(ValueError):
            VerticalLinkSpec("l", 2, 1, (0, 0))

    def test_count_explicit_macros(self):
        links = [
            VerticalLinkSpec("a", 0, 1, (0, 0)),  # adjacent: 0 macros
            VerticalLinkSpec("b", 0, 2, (0, 0)),  # 1 macro
            VerticalLinkSpec("c", 0, 3, (0, 0)),  # 2 macros
        ]
        assert count_explicit_macros(links) == 3


class TestPlaceTsvMacros:
    def test_adjacent_links_add_nothing(self):
        fp = _fp()
        out = place_tsv_macros(
            fp, [VerticalLinkSpec("l", 0, 1, (1.0, 1.0))], TsvModel(), 32
        )
        assert len(out) == len(fp)
        assert not out.of_kind("tsv")

    def test_multilayer_link_gets_intermediate_macro(self):
        fp = _fp()
        out = place_tsv_macros(
            fp, [VerticalLinkSpec("l5", 0, 2, (1.0, 1.0))], TsvModel(), 32
        )
        tsvs = out.of_kind("tsv")
        assert len(tsvs) == 1
        assert tsvs[0].layer == 1
        assert tsvs[0].name == "tsv:l5:L1"
        assert out.is_legal()

    def test_macro_near_top_component(self):
        fp = _fp()
        out = place_tsv_macros(
            fp, [VerticalLinkSpec("l", 0, 2, (1.0, 1.0))], TsvModel(), 32,
            search_radius=3.0,
        )
        macro = out.of_kind("tsv")[0]
        cx, cy = macro.center
        assert abs(cx - 1.0) + abs(cy - 1.0) < 3.5

    def test_macro_area_matches_model(self):
        model = TsvModel()
        fp = _fp()
        out = place_tsv_macros(
            fp, [VerticalLinkSpec("l", 0, 2, (1.0, 1.0))], model, 32
        )
        macro = out.of_kind("tsv")[0]
        assert macro.rect.area == pytest.approx(model.macro_area_mm2(32), rel=1e-6)

    def test_three_layer_span_two_macros(self):
        fp = _fp(4)
        out = place_tsv_macros(
            fp, [VerticalLinkSpec("l", 0, 3, (1.0, 1.0))], TsvModel(), 32
        )
        layers = sorted(c.layer for c in out.of_kind("tsv"))
        assert layers == [1, 2]
        assert out.is_legal()

    def test_cores_preserved(self):
        fp = _fp()
        out = place_tsv_macros(
            fp, [VerticalLinkSpec("l", 0, 2, (1.0, 1.0))], TsvModel(), 32
        )
        assert {c.name for c in out.of_kind("core")} == {
            c.name for c in fp.of_kind("core")
        }
