"""Simulated-annealing floorplanner (repro.floorplan.annealer)."""

import pytest

pytestmark = pytest.mark.slow

from repro.floorplan.annealer import anneal_floorplan
from repro.floorplan.geometry import Rect, rects_overlap
from repro.floorplan.sequence_pair import SequencePair


def _legal(result, widths, heights):
    rects = [
        Rect(x, y, w, h)
        for (x, y), w, h in zip(result.positions, widths, heights)
    ]
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            if rects_overlap(rects[i], rects[j]):
                return False
    return True


class TestAnnealFloorplan:
    def test_single_block(self):
        result = anneal_floorplan([2.0], [3.0])
        assert result.positions == [(0.0, 0.0)]
        assert result.area == pytest.approx(6.0)

    def test_legal_placement(self):
        widths = [1.0, 2.0, 1.5, 1.0, 0.8]
        heights = [1.5, 1.0, 1.2, 0.9, 1.1]
        result = anneal_floorplan(widths, heights, moves=800, seed=3)
        assert _legal(result, widths, heights)

    def test_area_not_absurd(self):
        # Packing 9 unit squares should land well under 3x the ideal area.
        widths = heights = [1.0] * 9
        result = anneal_floorplan(widths, heights, moves=1500, seed=1)
        assert result.area <= 27.0

    def test_deterministic(self):
        widths = [1.0, 2.0, 1.0, 1.5]
        heights = [1.0, 1.0, 2.0, 1.5]
        a = anneal_floorplan(widths, heights, moves=400, seed=7)
        b = anneal_floorplan(widths, heights, moves=400, seed=7)
        assert a.positions == b.positions
        assert a.cost == b.cost

    def test_wirelength_pulls_connected_blocks_together(self):
        # 6 blocks; blocks 0 and 5 heavily connected: they should end up
        # closer than the far corners of the packing.
        widths = heights = [1.0] * 6
        nets = {(0, 5): 100.0}
        result = anneal_floorplan(
            widths, heights, nets, wirelength_weight=4.0, moves=2500, seed=2
        )
        (x0, y0), (x5, y5) = result.positions[0], result.positions[5]
        dist = abs(x0 - x5) + abs(y0 - y5)
        assert dist <= 2.5  # adjacent-ish, not across the floorplan

    def test_anchor_pulls_block_to_point(self):
        widths = heights = [1.0] * 4
        anchors = {(2, (0.0, 0.0)): 50.0}
        result = anneal_floorplan(
            widths, heights, anchors=anchors, wirelength_weight=4.0,
            moves=2000, seed=4,
        )
        x, y = result.positions[2]
        assert x + y <= 2.5  # block 2 hugs the origin corner

    def test_initial_sp_respected(self):
        sp = SequencePair.identity(3)
        result = anneal_floorplan([1.0] * 3, [1.0] * 3, moves=0, initial_sp=sp)
        assert result.sequence_pair == sp

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            anneal_floorplan([], [])
        with pytest.raises(ValueError):
            anneal_floorplan([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            anneal_floorplan([1.0], [1.0], initial_sp=SequencePair.identity(2))
