"""Balanced k-way min-cut partitioner (repro.graphs.partition)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.partition import cut_value, kway_min_cut


def _ring(n, w=1.0):
    return {(i, (i + 1) % n): w for i in range(n)}


class TestBasics:
    def test_k1_single_block(self):
        assert kway_min_cut(5, _ring(5), 1) == [list(range(5))]

    def test_kn_singletons(self):
        blocks = kway_min_cut(4, _ring(4), 4)
        assert blocks == [[0], [1], [2], [3]]

    def test_partition_covers_all_vertices(self):
        blocks = kway_min_cut(10, _ring(10), 3)
        flat = sorted(v for b in blocks for v in b)
        assert flat == list(range(10))

    def test_balance(self):
        for k in (2, 3, 4, 7):
            blocks = kway_min_cut(10, _ring(10), k)
            sizes = sorted(len(b) for b in blocks)
            assert sizes[-1] - sizes[0] <= 1

    def test_deterministic(self):
        a = kway_min_cut(12, _ring(12), 3, seed=5)
        b = kway_min_cut(12, _ring(12), 3, seed=5)
        assert a == b

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kway_min_cut(5, {}, 0)
        with pytest.raises(ValueError):
            kway_min_cut(5, {}, 6)

    def test_invalid_edges(self):
        with pytest.raises(ValueError):
            kway_min_cut(3, {(0, 5): 1.0}, 2)
        with pytest.raises(ValueError):
            kway_min_cut(3, {(0, 1): -1.0}, 2)


class TestQuality:
    def test_two_cliques_split_perfectly(self):
        # Two 4-cliques joined by one weak edge: the min cut is that edge.
        weights = {}
        for group in ([0, 1, 2, 3], [4, 5, 6, 7]):
            for i in range(4):
                for j in range(i + 1, 4):
                    weights[(group[i], group[j])] = 10.0
        weights[(3, 4)] = 1.0
        blocks = kway_min_cut(8, weights, 2)
        assert sorted(map(sorted, blocks)) == [[0, 1, 2, 3], [4, 5, 6, 7]]
        assert cut_value(8, weights, blocks) == pytest.approx(1.0)

    def test_ring_cut_is_two_edges(self):
        blocks = kway_min_cut(8, _ring(8), 2)
        # Cutting a ring into two arcs severs exactly 2 edges.
        assert cut_value(8, _ring(8), blocks) == pytest.approx(2.0)

    def test_heavy_pair_stays_together(self):
        weights = {(0, 1): 100.0, (2, 3): 100.0, (0, 2): 1.0, (1, 3): 1.0}
        blocks = kway_min_cut(4, weights, 2)
        owner = {v: i for i, b in enumerate(blocks) for v in b}
        assert owner[0] == owner[1]
        assert owner[2] == owner[3]

    def test_disconnected_graph_ok(self):
        blocks = kway_min_cut(6, {(0, 1): 5.0}, 3)
        assert sorted(len(b) for b in blocks) == [2, 2, 2]

    def test_directed_weights_summed(self):
        # (0,1) and (1,0) both present: pair weight is their sum.
        weights = {(0, 1): 3.0, (1, 0): 4.0, (1, 2): 1.0}
        blocks = [[0, 2], [1]]
        assert cut_value(3, weights, blocks) == pytest.approx(8.0)


class TestCutValue:
    def test_no_cut_when_one_block(self):
        assert cut_value(4, _ring(4), [[0, 1, 2, 3]]) == 0.0

    def test_rejects_double_assignment(self):
        with pytest.raises(ValueError):
            cut_value(3, {}, [[0, 1], [1, 2]])

    def test_rejects_incomplete_cover(self):
        with pytest.raises(ValueError):
            cut_value(3, {}, [[0], [1]])

    def test_self_loops_ignored(self):
        assert cut_value(2, {(0, 0): 9.0}, [[0], [1]]) == 0.0


class TestHypothesis:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=16),
        k=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=3),
        data=st.data(),
    )
    def test_partition_always_valid(self, n, k, seed, data):
        if k > n:
            k = n
        n_edges = data.draw(st.integers(min_value=0, max_value=2 * n))
        weights = {}
        for _ in range(n_edges):
            i = data.draw(st.integers(min_value=0, max_value=n - 1))
            j = data.draw(st.integers(min_value=0, max_value=n - 1))
            w = data.draw(st.floats(min_value=0.0, max_value=100.0))
            if i != j:
                weights[(i, j)] = w
        blocks = kway_min_cut(n, weights, k, seed=seed)
        assert len(blocks) == k
        flat = sorted(v for b in blocks for v in b)
        assert flat == list(range(n))
        sizes = [len(b) for b in blocks]
        assert max(sizes) - min(sizes) <= 1

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=4, max_value=12))
    def test_refined_cut_not_worse_than_round_robin(self, n):
        weights = _ring(n, 2.0)
        blocks = kway_min_cut(n, weights, 2)
        round_robin = [[v for v in range(n) if v % 2 == 0],
                       [v for v in range(n) if v % 2 == 1]]
        assert cut_value(n, weights, blocks) <= cut_value(n, weights, round_robin)
