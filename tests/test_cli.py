"""Command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.spec.io import save_comm_spec_text, save_core_spec_text


class TestBenchmarksCommand:
    @pytest.mark.slow  # builds every benchmark's annealed floorplan
    def test_lists_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "d26_media" in out and "d36_4" in out


class TestSynthCommand:
    def test_synth_from_files(self, tmp_path, capsys, tiny_specs):
        core_spec, comm_spec = tiny_specs
        cores_path = tmp_path / "cores.txt"
        comm_path = tmp_path / "comm.txt"
        save_core_spec_text(core_spec, cores_path)
        save_comm_spec_text(comm_spec, comm_path)
        rc = main([
            "synth", "--cores", str(cores_path), "--comm", str(comm_path),
            "--max-ill", "10", "--switches", "2:3", "--all-points",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best design point" in out
        assert "sw0" in out

    def test_synth_benchmark(self, capsys):
        rc = main([
            "synth", "--benchmark", "d26_media", "--switches", "3:4",
        ])
        assert rc == 0
        assert "best design point" in capsys.readouterr().out

    def test_stage_timings_and_jobs(self, tmp_path, capsys, tiny_specs):
        core_spec, comm_spec = tiny_specs
        cores_path = tmp_path / "cores.txt"
        comm_path = tmp_path / "comm.txt"
        save_core_spec_text(core_spec, cores_path)
        save_comm_spec_text(comm_spec, comm_path)
        rc = main([
            "synth", "--cores", str(cores_path), "--comm", str(comm_path),
            "--max-ill", "10", "--switches", "2:3",
            "--stage-timings", "--jobs", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-stage timings" in out
        for stage in ("precheck", "routing", "placement_lp", "metrics"):
            assert stage in out
        assert "best design point" in out

    def test_missing_comm_errors(self, tmp_path, capsys, tiny_specs):
        core_spec, _ = tiny_specs
        cores_path = tmp_path / "cores.txt"
        save_core_spec_text(core_spec, cores_path)
        rc = main(["synth", "--cores", str(cores_path)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_infeasible_returns_one(self, tmp_path, capsys, tiny_specs):
        core_spec, comm_spec = tiny_specs
        cores_path = tmp_path / "cores.txt"
        comm_path = tmp_path / "comm.txt"
        save_core_spec_text(core_spec, cores_path)
        save_comm_spec_text(comm_spec, comm_path)
        rc = main([
            "synth", "--cores", str(cores_path), "--comm", str(comm_path),
            "--max-ill", "0", "--switches", "1:2",
        ])
        assert rc == 1


class TestSweepCommand:
    def test_sweep_frequencies_serial(self, tmp_path, capsys, tiny_specs):
        core_spec, comm_spec = tiny_specs
        cores_path = tmp_path / "cores.txt"
        comm_path = tmp_path / "comm.txt"
        save_core_spec_text(core_spec, cores_path)
        save_comm_spec_text(comm_spec, comm_path)
        rc = main([
            "sweep", "--cores", str(cores_path), "--comm", str(comm_path),
            "--max-ill", "10", "--switches", "2:3",
            "--frequencies", "200,400", "--jobs", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sweeping 2 design point(s)" in out
        assert "best design point over the grid" in out

    def test_sweep_parallel_grid(self, tmp_path, capsys, tiny_specs):
        core_spec, comm_spec = tiny_specs
        cores_path = tmp_path / "cores.txt"
        comm_path = tmp_path / "comm.txt"
        save_core_spec_text(core_spec, cores_path)
        save_comm_spec_text(comm_spec, comm_path)
        rc = main([
            "sweep", "--cores", str(cores_path), "--comm", str(comm_path),
            "--max-ill", "10", "--switches", "2:3",
            "--frequencies", "300,400", "--alphas", "0.4,0.8",
            "--jobs", "2", "--quiet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sweeping 4 design point(s)" in out

    def test_sweep_infeasible_grid_returns_one(self, tmp_path, capsys, tiny_specs):
        core_spec, comm_spec = tiny_specs
        cores_path = tmp_path / "cores.txt"
        comm_path = tmp_path / "comm.txt"
        save_core_spec_text(core_spec, cores_path)
        save_comm_spec_text(comm_spec, comm_path)
        rc = main([
            "sweep", "--cores", str(cores_path), "--comm", str(comm_path),
            "--frequencies", "10", "--jobs", "1", "--quiet",
        ])
        assert rc == 1
        assert "no valid design points" in capsys.readouterr().out

    def test_sweep_bad_list_errors(self, tmp_path, capsys, tiny_specs):
        core_spec, comm_spec = tiny_specs
        cores_path = tmp_path / "cores.txt"
        comm_path = tmp_path / "comm.txt"
        save_core_spec_text(core_spec, cores_path)
        save_comm_spec_text(comm_spec, comm_path)
        rc = main([
            "sweep", "--cores", str(cores_path), "--comm", str(comm_path),
            "--frequencies", "abc",
        ])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestExperimentCommand:
    def test_fig1(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "yield" in out.lower()

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().out
