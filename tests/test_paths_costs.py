"""Algorithm 3 cost evaluation (repro.core.paths._edge_cost)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.paths import INF, _edge_cost, _make_cost_model
from repro.graphs.comm_graph import build_comm_graph
from repro.models.library import default_library
from repro.noc.topology import Topology
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec


def _setup(num_layers=3, max_ill=10, **cfg_kwargs):
    cores = CoreSpec(cores=[
        Core(f"C{i}", 1, 1, 1.5 * i, 0, min(i, num_layers - 1))
        for i in range(num_layers)
    ])
    comm = CommSpec(flows=[TrafficFlow("C0", "C1", 100, 10)])
    graph = build_comm_graph(cores, comm)
    config = SynthesisConfig(max_ill=max_ill, **cfg_kwargs)
    library = default_library()
    topo = Topology(frequency_mhz=config.frequency_mhz,
                    width_bits=config.link_width_bits)
    for layer in range(num_layers):
        sw = topo.add_switch(layer)
        sw.x, sw.y = float(layer), 0.0
    model = _make_cost_model(topo, graph, library, config)
    return topo, graph, library, config, model


class TestHardConstraints:
    def test_layer_skip_is_inf(self):
        topo, _, lib, cfg, model = _setup(num_layers=3)
        cost, _ = _edge_cost(topo, lib, cfg, model, 0, 2, 100, 25)
        assert cost == INF

    def test_layer_skip_allowed_when_configured(self):
        topo, _, lib, cfg, model = _setup(
            num_layers=3, adjacent_layer_links_only=False
        )
        cost, _ = _edge_cost(topo, lib, cfg, model, 0, 2, 100, 25)
        assert cost < INF

    def test_ill_exhaustion_is_inf(self):
        topo, _, lib, cfg, model = _setup(num_layers=2, max_ill=2)
        topo.add_switch_link(0, 1)
        topo.add_switch_link(0, 1)
        # Saturate the existing links so only a NEW link could serve the
        # flow — and the ill budget is already exhausted.
        for link in topo.links:
            link.load_mbps = topo.capacity_mbps
        cost, _ = _edge_cost(topo, lib, cfg, model, 0, 1, 100, 25)
        assert cost == INF

    def test_existing_link_with_capacity_ignores_ill(self):
        # Reusing a link consumes no new TSVs, so a full ill budget is fine.
        topo, _, lib, cfg, model = _setup(num_layers=2, max_ill=1)
        topo.add_switch_link(0, 1)
        cost, new = _edge_cost(topo, lib, cfg, model, 0, 1, 100, 25)
        assert cost < INF
        assert not new

    def test_port_exhaustion_is_inf(self):
        topo, _, lib, cfg, model = _setup(num_layers=2)
        sw = topo.switches[0]
        sw.out_ports = model.max_switch_size
        cost, _ = _edge_cost(topo, lib, cfg, model, 0, 1, 100, 25)
        assert cost == INF

    def test_destination_port_exhaustion_is_inf(self):
        topo, _, lib, cfg, model = _setup(num_layers=2)
        topo.switches[1].in_ports = model.max_switch_size
        cost, _ = _edge_cost(topo, lib, cfg, model, 0, 1, 100, 25)
        assert cost == INF


class TestSoftThresholds:
    def test_soft_ill_adds_penalty(self):
        topo, _, lib, cfg, model = _setup(num_layers=2, max_ill=10)
        base, _ = _edge_cost(topo, lib, cfg, model, 0, 1, 100, 25)
        # Load the boundary to the soft threshold (max_ill - 2 = 8).
        for _ in range(model.soft_max_ill):
            topo.add_switch_link(0, 1)
        # Saturate those links so a new one is needed.
        for link in topo.links:
            link.load_mbps = topo.capacity_mbps
        soft, _ = _edge_cost(topo, lib, cfg, model, 0, 1, 100, 25)
        assert soft > base + model.soft_inf * 0.9

    def test_soft_penalty_disabled(self):
        topo, _, lib, cfg, model = _setup(
            num_layers=2, max_ill=10, use_soft_thresholds=False
        )
        for _ in range(model.soft_max_ill):
            topo.add_switch_link(0, 1)
        for link in topo.links:
            link.load_mbps = topo.capacity_mbps
        cost, _ = _edge_cost(topo, lib, cfg, model, 0, 1, 100, 25)
        assert cost < model.soft_inf

    def test_soft_switch_size_penalty(self):
        topo, _, lib, cfg, model = _setup(num_layers=2)
        topo.switches[0].out_ports = model.soft_switch_size
        cost, _ = _edge_cost(topo, lib, cfg, model, 0, 1, 100, 25)
        assert cost > model.soft_inf * 0.9

    def test_soft_inf_dominates_any_real_path_cost(self):
        """SOFT_INF is 'ten times the maximum cost of any flow': a single
        soft penalty must outweigh any realistic multi-hop detour."""
        topo, graph, lib, cfg, model = _setup(num_layers=2)
        worst_hop, _ = _edge_cost(topo, lib, cfg, model, 0, 1,
                                  graph.max_bandwidth,
                                  graph.max_bandwidth / 4.0)
        assert model.soft_inf > 5 * worst_hop


class TestCostStructure:
    def test_longer_distance_costs_more(self):
        topo, _, lib, cfg, model = _setup(num_layers=2)
        near, _ = _edge_cost(topo, lib, cfg, model, 0, 1, 100, 25)
        topo.switches[1].x = 10.0
        far, _ = _edge_cost(topo, lib, cfg, model, 0, 1, 100, 25)
        assert far > near

    def test_reuse_cheaper_than_new(self):
        topo, _, lib, cfg, model = _setup(num_layers=2)
        new_cost, new = _edge_cost(topo, lib, cfg, model, 0, 1, 100, 25)
        assert new
        topo.add_switch_link(0, 1)
        reuse_cost, new2 = _edge_cost(topo, lib, cfg, model, 0, 1, 100, 25)
        assert not new2
        assert reuse_cost < new_cost

    def test_higher_rate_costs_more(self):
        topo, _, lib, cfg, model = _setup(num_layers=2)
        low, _ = _edge_cost(topo, lib, cfg, model, 0, 1, 100, 25)
        high, _ = _edge_cost(topo, lib, cfg, model, 0, 1, 400, 100)
        assert high > low
