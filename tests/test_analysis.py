"""Tests for ``repro.analysis`` — the contract linter.

The fixture corpus under ``tests/analysis_fixtures/`` carries matched
good/bad examples per checker; each ``# expect: CODE`` comment in a bad
fixture pins the exact finding code(s) and line number the checker must
report, so the assertions here are byte-precise without hand-maintained
line tables.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.analysis import (
    AnalysisError,
    Baseline,
    CHECKER_REGISTRY,
    Checker,
    format_report,
    known_codes,
    lint_paths,
    load_corpus,
    resolve_checkers,
    run_checkers,
)
from repro.analysis.framework import register_checker

TESTS_DIR = Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "analysis_fixtures"
REPO_ROOT = TESTS_DIR.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"
PIPELINE = SRC_REPRO / "core" / "pipeline.py"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<codes>RPL\d{3}(?:\s*,\s*RPL\d{3})*)")


def expected_findings(path: Path) -> set:
    """``{(line, code)}`` pinned by the fixture's ``# expect:`` markers."""
    out = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match is None:
            continue
        for code in re.findall(r"RPL\d{3}", match.group("codes")):
            out.add((lineno, code))
    return out


def reported_findings(report) -> set:
    return {(f.line, f.code) for f in report.findings}


# -- fixture corpus: good/bad pairs per checker ------------------------------

@pytest.mark.parametrize("fixture,checker", [
    ("stage_inputs_good.py", "stage-inputs"),
    ("determinism_good.py", "determinism"),
    ("pickling_good.py", "pickling"),
    ("batch_payload_good.py", "pickling"),
    ("lock_good.py", "lock-discipline"),
])
def test_good_fixtures_are_clean(fixture, checker):
    report = lint_paths([FIXTURES / fixture], checkers=[checker])
    assert report.clean, format_report(report)


@pytest.mark.parametrize("fixture,checker", [
    ("stage_inputs_bad.py", "stage-inputs"),
    ("determinism_bad.py", "determinism"),
    ("pickling_bad.py", "pickling"),
    ("batch_payload_bad.py", "pickling"),
    ("lock_bad.py", "lock-discipline"),
])
def test_bad_fixtures_report_exact_codes_and_lines(fixture, checker):
    path = FIXTURES / fixture
    expected = expected_findings(path)
    assert expected, f"{fixture} has no expect markers"
    report = lint_paths([path], checkers=[checker])
    assert reported_findings(report) == expected, format_report(report)


def test_bad_fixtures_cover_every_code_of_their_checker():
    """The corpus exercises the full code table, not a sample."""
    covered = set()
    for fixture in ("stage_inputs_bad.py", "determinism_bad.py",
                    "pickling_bad.py", "batch_payload_bad.py",
                    "lock_bad.py"):
        covered |= {code for _, code in expected_findings(FIXTURES / fixture)}
    per_checker = set()
    for name in ("stage-inputs", "determinism", "pickling",
                 "lock-discipline"):
        per_checker |= set(CHECKER_REGISTRY[name].codes)
    assert covered == per_checker


# -- suppressions ------------------------------------------------------------

def test_suppression_fixture_framework_findings():
    path = FIXTURES / "suppressions.py"
    report = lint_paths([path], checkers=["determinism"])
    assert reported_findings(report) == expected_findings(path), \
        format_report(report)
    # The well-formed suppression and the reasonless one both silence
    # their RPL202 (RPL002 flags the latter separately).
    assert report.suppressed == 2


def test_suppression_requires_same_line(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text(
        "import time\n"
        "# repro: noqa[RPL202] -- wrong line, suppresses nothing\n"
        "t = time.time()\n"
    )
    report = lint_paths([src], checkers=["determinism"])
    codes = sorted(f.code for f in report.findings)
    assert codes == ["RPL001", "RPL202"]


def test_framework_codes_are_unsuppressible(tmp_path):
    src = tmp_path / "mod.py"
    # Reasonless noqa → RPL002 on its own line; listing RPL002 in the
    # suppression itself must not silence the framework finding.
    src.write_text("import time\nt = time.time()  # repro: noqa[RPL202,RPL002]\n")
    report = lint_paths([src], checkers=["determinism"])
    assert [f.code for f in report.findings] == ["RPL002"]
    assert report.suppressed == 1


def test_noqa_in_string_literal_is_not_a_suppression(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text(
        'DOC = "example: # repro: noqa[RPL202] -- not a comment"\n'
    )
    report = lint_paths([src], checkers=["determinism"])
    assert report.clean, format_report(report)


def test_unused_noqa_only_flagged_for_active_checkers(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text("x = 1  # repro: noqa[RPL301] -- pickling-only concern\n")
    # Determinism-only run: RPL301's checker did not run, so the
    # suppression cannot be proven unused.
    partial = lint_paths([src], checkers=["determinism"])
    assert partial.clean, format_report(partial)
    # With the pickling checker active it is provably unused.
    full = lint_paths([src], checkers=["pickling"])
    assert [f.code for f in full.findings] == ["RPL001"]


def test_unknown_noqa_code_is_flagged(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text("x = 1  # repro: noqa[RPL999] -- no such code\n")
    report = lint_paths([src], checkers=["determinism"])
    assert [f.code for f in report.findings] == ["RPL003"]


# -- the tree itself ---------------------------------------------------------

def test_src_repro_lints_clean():
    """The gating property: the shipped tree has zero unsuppressed
    findings across all five checkers."""
    report = lint_paths([SRC_REPRO], project_root=REPO_ROOT)
    assert report.clean, format_report(report)
    assert set(report.checkers) == set(CHECKER_REGISTRY)
    assert report.modules > 50


def test_deleting_routing_context_input_fails_with_stage_attr_line(tmp_path):
    """Acceptance: removing one declared ``context_inputs`` entry from
    RoutingStage must fail naming the exact stage, attribute and line."""
    src = PIPELINE.read_text()
    needle = 'context_inputs = ("graph", "library", "core_centers")'
    first = src.find(needle)
    second = src.find(needle, first + 1)       # SkeletonStage declares the
    assert second != -1                        # same tuple; RoutingStage is
    munged = (                                 # the second occurrence.
        src[:second]
        + 'context_inputs = ("graph", "library")'
        + src[second + len(needle):]
    )
    target = tmp_path / "pipeline.py"
    target.write_text(munged)

    report = lint_paths([target], checkers=["stage-inputs"])
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.code == "RPL101"
    assert "'routing'" in finding.message
    assert "core_centers" in finding.message
    # The line is the ctx.core_centers read inside RoutingStage.run.
    lines = munged.splitlines()
    class_line = next(
        i for i, l in enumerate(lines, 1) if "class RoutingStage" in l
    )
    read_line = next(
        i for i, l in enumerate(lines, 1)
        if i > class_line and "ctx.core_centers" in l
    )
    assert finding.line == read_line


def test_added_undeclared_ctx_read_fails(tmp_path):
    """Acceptance variant: a new undeclared ``ctx.`` read in a stage body
    is a finding even with the declarations untouched."""
    src = PIPELINE.read_text()
    anchor = "def run(self, ctx: FlowContext, state: CandidateState) -> None:\n        die_w, die_h = ctx.die_bounds"
    assert anchor in src  # PlacementLPStage.run
    munged = src.replace(
        anchor,
        anchor.replace(
            "die_w, die_h = ctx.die_bounds",
            "_sneaky = ctx.graph\n        die_w, die_h = ctx.die_bounds",
        ),
    )
    target = tmp_path / "pipeline.py"
    target.write_text(munged)
    report = lint_paths([target], checkers=["stage-inputs"])
    assert [f.code for f in report.findings] == ["RPL101"]
    assert "'placement_lp'" in report.findings[0].message
    assert "graph" in report.findings[0].message


# -- stage-salts checker -----------------------------------------------------

def _salt_mirror(tmp_path: Path) -> tuple:
    """A repo mirror with the real pipeline module and a copyable
    manifest, for tampering without touching the tree."""
    root = tmp_path / "mirror"
    module_dir = root / "src" / "repro" / "core"
    module_dir.mkdir(parents=True)
    module = module_dir / "pipeline.py"
    module.write_text(PIPELINE.read_text())
    tools = root / "tools"
    tools.mkdir()
    manifest = tools / "stage_salts.json"
    manifest.write_text((REPO_ROOT / "tools" / "stage_salts.json").read_text())
    return root, module, manifest


def _salt_report(root, module):
    return lint_paths([module], project_root=root, checkers=["stage-salts"])


def test_stage_salts_intact_manifest_is_clean(tmp_path):
    root, module, _ = _salt_mirror(tmp_path)
    report = _salt_report(root, module)
    assert report.clean, format_report(report)


def test_stage_salts_detects_source_drift(tmp_path):
    root, module, manifest = _salt_mirror(tmp_path)
    doc = json.loads(manifest.read_text())
    doc["routing"]["run_sha256"] = "0" * 64
    manifest.write_text(json.dumps(doc))
    report = _salt_report(root, module)
    assert [f.code for f in report.findings] == ["RPL504"]
    assert "'routing'" in report.findings[0].message
    assert "bump Stage.salt" in report.findings[0].message


def test_stage_salts_detects_salt_drift(tmp_path):
    root, module, manifest = _salt_mirror(tmp_path)
    doc = json.loads(manifest.read_text())
    doc["skeleton"]["salt"] = "v0-ancient"
    manifest.write_text(json.dumps(doc))
    report = _salt_report(root, module)
    assert [f.code for f in report.findings] == ["RPL504"]
    assert "'skeleton'" in report.findings[0].message


def test_stage_salts_detects_missing_and_phantom_stages(tmp_path):
    root, module, manifest = _salt_mirror(tmp_path)
    doc = json.loads(manifest.read_text())
    del doc["metrics"]
    doc["ghost-stage"] = {"salt": "v1", "run_sha256": "0" * 64}
    manifest.write_text(json.dumps(doc))
    report = _salt_report(root, module)
    codes = sorted(f.code for f in report.findings)
    assert codes == ["RPL502", "RPL503"]
    messages = " ".join(f.message for f in report.findings)
    assert "'metrics'" in messages and "'ghost-stage'" in messages


def test_stage_salts_missing_manifest(tmp_path):
    root, module, manifest = _salt_mirror(tmp_path)
    manifest.unlink()
    report = _salt_report(root, module)
    assert [f.code for f in report.findings] == ["RPL501"]


def test_stage_salts_finding_anchors_to_class_def(tmp_path):
    root, module, manifest = _salt_mirror(tmp_path)
    doc = json.loads(manifest.read_text())
    doc["routing"]["run_sha256"] = "0" * 64
    manifest.write_text(json.dumps(doc))
    report = _salt_report(root, module)
    lines = module.read_text().splitlines()
    class_line = next(
        i for i, l in enumerate(lines, 1) if l.startswith("class RoutingStage")
        or "class RoutingStage" in l
    )
    assert report.findings[0].line == class_line


def test_check_stage_salts_shim_delegates():
    """The deprecation shim lints via repro.analysis and stays green."""
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_stage_salts.py")],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "stage-salts" in proc.stdout


def test_check_stage_salts_update_is_idempotent():
    manifest = REPO_ROOT / "tools" / "stage_salts.json"
    before = manifest.read_text()
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_stage_salts.py"),
         "--update"],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert manifest.read_text() == before


# -- framework ---------------------------------------------------------------

def test_resolve_unknown_checker_raises():
    with pytest.raises(AnalysisError, match="unknown checker"):
        resolve_checkers(["no-such-checker"])


def test_lint_nonexistent_target_raises(tmp_path):
    with pytest.raises(AnalysisError, match="does not exist"):
        lint_paths([tmp_path / "missing.py"])


def test_syntax_error_in_corpus_raises(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    with pytest.raises(AnalysisError, match="cannot parse"):
        lint_paths([bad])


def test_registry_has_five_checkers_with_disjoint_codes():
    assert list(CHECKER_REGISTRY) == [
        "stage-inputs", "determinism", "pickling", "lock-discipline",
        "stage-salts",
    ]
    seen = {}
    for name, cls in CHECKER_REGISTRY.items():
        for code in cls.codes:
            assert code not in seen, f"{code} in both {seen[code]} and {name}"
            seen[code] = name
    # Framework codes are reserved on top.
    assert {"RPL001", "RPL002", "RPL003"} <= set(known_codes())
    assert not set(seen) & {"RPL001", "RPL002", "RPL003"}


def test_register_checker_rejects_code_collision():
    class Colliding(Checker):
        name = "colliding"
        codes = {"RPL201": "already owned by determinism"}

    with pytest.raises(AnalysisError, match="re-registers"):
        register_checker(Colliding)
    assert "colliding" not in CHECKER_REGISTRY


def test_checker_cannot_emit_unregistered_code(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text("x = 1\n")
    context = load_corpus([src])
    checker = resolve_checkers(["determinism"])[0]
    with pytest.raises(AnalysisError, match="unregistered code"):
        checker.finding("RPL999", "nope", context.modules[0], line=1)


def test_finding_render_and_dict(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text("import time\nt = time.time()\n")
    report = lint_paths([src], checkers=["determinism"])
    (finding,) = report.findings
    assert finding.render().startswith("mod.py:2:")
    assert "RPL202" in finding.render()
    doc = report.as_dict()
    assert doc["clean"] is False
    assert doc["findings"][0]["code"] == "RPL202"
    parsed = json.loads(format_report(report, as_json=True))
    assert parsed["findings"][0]["line"] == 2


def test_baseline_accepts_by_message_not_line(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text("import time\nt = time.time()\n")
    report = lint_paths([src], checkers=["determinism"])
    baseline_file = tmp_path / "baseline.json"
    Baseline.write(baseline_file, report.findings)

    # The same finding moved two lines down is still accepted...
    src.write_text("import time\n\n\nt = time.time()\n")
    rerun = lint_paths(
        [src], checkers=["determinism"], baseline=baseline_file,
    )
    assert rerun.clean
    assert rerun.baselined == 1

    # ...but a different finding is not.
    src.write_text("import time\nimport os\nt = time.time()\nu = os.urandom(4)\n")
    rerun = lint_paths(
        [src], checkers=["determinism"], baseline=baseline_file,
    )
    assert [f.code for f in rerun.findings] == ["RPL202"]
    assert "os.urandom" in rerun.findings[0].message


def test_corrupt_baseline_raises(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("[]")
    src = tmp_path / "mod.py"
    src.write_text("x = 1\n")
    with pytest.raises(AnalysisError, match="findings"):
        lint_paths([src], baseline=bad)


# -- CLI ---------------------------------------------------------------------

def _cli(*argv):
    from repro.cli import main
    return main(list(argv))


def test_cli_lint_tree_clean(capsys):
    assert _cli("lint") == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert "stage-salts" in out


def test_cli_lint_findings_exit_one(capsys):
    rc = _cli("lint", str(FIXTURES / "determinism_bad.py"),
              "--checkers", "determinism")
    assert rc == 1
    out = capsys.readouterr().out
    assert "RPL201" in out and "RPL204" in out


def test_cli_lint_json(capsys):
    rc = _cli("lint", str(FIXTURES / "pickling_bad.py"),
              "--checkers", "pickling", "--json")
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["clean"] is False
    assert {f["code"] for f in doc["findings"]} == {
        "RPL301", "RPL302", "RPL303", "RPL304",
    }


def test_cli_lint_list(capsys):
    assert _cli("lint", "--list") == 0
    out = capsys.readouterr().out
    for name in CHECKER_REGISTRY:
        assert name in out
    for code in ("RPL001", "RPL101", "RPL201", "RPL301", "RPL401", "RPL501"):
        assert code in out


def test_cli_lint_unknown_checker_is_structured_error(capsys):
    assert _cli("lint", "--checkers", "nope") == 2
    assert "unknown checker" in capsys.readouterr().err


def test_cli_lint_baseline_roundtrip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    rc = _cli("lint", str(FIXTURES / "determinism_bad.py"),
              "--checkers", "determinism",
              "--write-baseline", str(baseline))
    assert rc == 0
    assert baseline.exists()
    rc = _cli("lint", str(FIXTURES / "determinism_bad.py"),
              "--checkers", "determinism", "--baseline", str(baseline))
    assert rc == 0
    out = capsys.readouterr().out
    assert "baselined" in out


def test_python_dash_m_repro_analysis_alias():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--checkers", "determinism",
         str(FIXTURES / "determinism_good.py")],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


# -- the contracts the linter enforces, at runtime ---------------------------

def test_lock_markers_attach_attributes_without_wrapping():
    from repro.engine.locks import acquires_lock, asserts_lock, requires_lock

    def probe():
        return 42

    marked = requires_lock("store")(probe)
    assert marked is probe
    assert probe.__requires_lock__ == "store"
    assert acquires_lock("x")(probe) is probe
    assert asserts_lock("y")(probe) is probe
    assert probe.__acquires_lock__ == "x"
    assert probe.__asserts_lock__ == "y"


def test_journal_readonly_guard_still_raises(tmp_path):
    """Regression for the `_require_writer` extraction: a read-only
    journal refuses append and compact with the structured error."""
    from repro.campaign.journal import JobJournal
    from repro.errors import JournalError

    with JobJournal(tmp_path / "journal.jsonl") as writer:
        writer.append("submitted", job="job-0001")
    reader = JobJournal(tmp_path / "journal.jsonl", writer=False)
    with pytest.raises(JournalError, match="cannot append"):
        reader.append("queued", job="job-0001")
    with pytest.raises(JournalError, match="cannot compact"):
        reader.compact()
    # And the write path still round-trips post-refactor.
    with JobJournal(tmp_path / "journal.jsonl") as writer:
        writer.append("done", job="job-0001", digest="d" * 64)
        dropped = writer.compact()
    state = JobJournal(tmp_path / "journal.jsonl", writer=False).replay()
    assert state.jobs["job-0001"].state == "done"
    assert dropped >= 0


def test_floorplan_jobs_fingerprint_invariant(tmp_path):
    """Regression for the RPL102 suppression in FloorplanStage: the
    parallelism knob must not enter the stage fingerprint (declaring it
    would split the cache by worker count), while a declared knob must."""
    from repro.core.config import SynthesisConfig
    from repro.core.pipeline import FloorplanStage
    from repro.engine.stagecache import StageCache
    from repro.engine.store import ResultStore

    stage = FloorplanStage()
    cache = StageCache(ResultStore(tmp_path / "store"))
    base = SynthesisConfig(floorplanner="constrained")

    def fingerprint(config):
        ctx = SimpleNamespace(
            core_spec="core-spec-token", library="library-token",
            config=config,
        )
        state = SimpleNamespace(topology="topology-token")
        return cache.fingerprint(stage, (), ctx, state)

    assert fingerprint(base) is not None
    assert fingerprint(base) == fingerprint(base.with_(floorplan_jobs=8))
    assert fingerprint(base) != fingerprint(base.with_(search_radius_mm=2.0))


def test_pipeline_decl_paths_config_inputs():
    """Regression for the RPL106 suppressions in Skeleton/RoutingStage:
    the whole config object goes into repro.core.paths, whose actual
    config reads must equal the curated _PATHS_CONFIG_INPUTS tuple."""
    from repro.core.pipeline import _PATHS_CONFIG_INPUTS

    source = (SRC_REPRO / "core" / "paths.py").read_text()
    reads = set(re.findall(r"\bconfig\.([a-z_0-9]+)", source))
    assert reads == set(_PATHS_CONFIG_INPUTS)
