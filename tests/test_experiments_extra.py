"""Additional experiment runners (simulation validation, yield variants)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.experiments.simulation_validation import run_simulation_validation

SMALL = SynthesisConfig(max_ill=25, switch_count_range=(3, 5))


class TestSimulationValidation:
    @pytest.fixture(scope="class")
    def table(self):
        return run_simulation_validation(
            "d26_media",
            injection_scales=(0.1, 0.8),
            cycles=6_000,
            warmup=600,
            config=SMALL,
        )

    def test_rows_per_scale(self, table):
        assert [r["injection_scale"] for r in table.rows] == [0.1, 0.8]

    def test_simulated_never_beats_analytic(self, table):
        for row in table.rows:
            assert row["sim_latency_cyc"] >= row["analytic_cyc"] - 1e-9
            assert row["gap_cyc"] >= -1e-9

    def test_latency_grows_with_load(self, table):
        light, heavy = table.rows
        assert heavy["sim_latency_cyc"] >= light["sim_latency_cyc"] - 0.25

    def test_delivery_healthy(self, table):
        for row in table.rows:
            assert row["delivery_ratio"] > 0.85

    def test_scenario_and_seed_columns(self, table):
        assert all(row["scenario"] == "bernoulli" for row in table.rows)
        assert all(row["seed"] == 0 for row in table.rows)


class TestSimulationCampaign:
    def test_serial_parallel_bit_identical(self):
        kwargs = dict(
            benchmark="d26_media",
            injection_scales=(0.2, 0.7),
            scenarios=("bernoulli", "hotspot"),
            seeds=(0, 1),
            cycles=3_000,
            warmup=300,
            config=SMALL,
        )
        serial = run_simulation_validation(jobs=1, **kwargs)
        parallel = run_simulation_validation(jobs=2, **kwargs)
        assert serial.rows == parallel.rows
        assert len(serial.rows) == 2 * 2 * 2

    def test_custom_library_shifts_analytics_and_simulation(self):
        from repro.models.library import default_library

        slow = default_library().with_link(wire_delay_ns_per_mm=9.0)
        base = run_simulation_validation(
            "d26_media", injection_scales=(0.2,), cycles=3_000, warmup=300,
            config=SMALL,
        )
        slowed = run_simulation_validation(
            "d26_media", injection_scales=(0.2,), cycles=3_000, warmup=300,
            config=SMALL, library=slow,
        )
        assert slowed.rows[0]["analytic_cyc"] > base.rows[0]["analytic_cyc"]
        assert slowed.rows[0]["sim_latency_cyc"] > base.rows[0]["sim_latency_cyc"]
