"""Additional experiment runners (simulation validation, yield variants)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.experiments.simulation_validation import run_simulation_validation

SMALL = SynthesisConfig(max_ill=25, switch_count_range=(3, 5))


class TestSimulationValidation:
    @pytest.fixture(scope="class")
    def table(self):
        return run_simulation_validation(
            "d26_media",
            injection_scales=(0.1, 0.8),
            cycles=6_000,
            warmup=600,
            config=SMALL,
        )

    def test_rows_per_scale(self, table):
        assert [r["injection_scale"] for r in table.rows] == [0.1, 0.8]

    def test_simulated_never_beats_analytic(self, table):
        for row in table.rows:
            assert row["sim_latency_cyc"] >= row["analytic_cyc"] - 1e-9
            assert row["gap_cyc"] >= -1e-9

    def test_latency_grows_with_load(self, table):
        light, heavy = table.rows
        assert heavy["sim_latency_cyc"] >= light["sim_latency_cyc"] - 0.25

    def test_delivery_healthy(self, table):
        for row in table.rows:
            assert row["delivery_ratio"] > 0.85
