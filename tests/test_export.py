"""Design export (repro.noc.export)."""

import json

import pytest

from repro.core.config import SynthesisConfig
from repro.core.synthesis import synthesize
from repro.noc.export import (
    design_point_to_dict,
    save_design_point_json,
    save_topology_dot,
    topology_to_dict,
    topology_to_dot,
)


@pytest.fixture(scope="module")
def point():
    from tests.conftest import grid_core_spec
    from repro.spec.comm_spec import CommSpec, TrafficFlow

    core_spec = grid_core_spec(6, 2)
    comm_spec = CommSpec(flows=[
        TrafficFlow("C0", "C1", 200, 8),
        TrafficFlow("C1", "C4", 300, 8),
        TrafficFlow("C4", "C5", 150, 8),
    ])
    result = synthesize(
        core_spec, comm_spec,
        config=SynthesisConfig(max_ill=10, switch_count_range=(2, 3)),
    )
    return result.best_power()


class TestJsonExport:
    def test_topology_dict_structure(self, point):
        data = topology_to_dict(point.topology)
        assert data["frequency_mhz"] == 400.0
        assert len(data["switches"]) == point.switch_count
        assert len(data["links"]) == len(point.topology.links)
        assert len(data["routes"]) == 3

    def test_routes_reference_valid_links(self, point):
        data = topology_to_dict(point.topology)
        link_ids = {l["id"] for l in data["links"]}
        for route in data["routes"].values():
            assert all(lid in link_ids for lid in route)

    def test_design_point_dict_metrics(self, point):
        data = design_point_to_dict(point)
        m = data["metrics"]
        assert m["total_power_mw"] == pytest.approx(
            m["switch_power_mw"] + m["sw2sw_link_power_mw"]
            + m["core2sw_link_power_mw"]
        )
        assert data["phase"] == point.phase
        assert len(data["floorplan"]) == len(point.floorplan)

    def test_json_roundtrip_file(self, point, tmp_path):
        path = tmp_path / "design.json"
        save_design_point_json(point, path)
        loaded = json.loads(path.read_text())
        assert loaded["switch_count"] == point.switch_count


class TestDotExport:
    def test_dot_structure(self, point):
        dot = topology_to_dot(point.topology)
        assert dot.startswith("digraph topology {")
        assert dot.rstrip().endswith("}")
        for sw in point.topology.switches:
            assert f"sw{sw.id}" in dot
        assert "subgraph cluster_layer0" in dot

    def test_dot_with_names(self, point):
        dot = topology_to_dot(point.topology, core_names=[f"C{i}" for i in range(6)])
        assert 'label="C0"' in dot

    def test_vertical_links_bold(self, point):
        dot = topology_to_dot(point.topology)
        if point.topology.num_vertical_links:
            assert "style=bold" in dot

    def test_dot_file(self, point, tmp_path):
        path = tmp_path / "topo.dot"
        save_topology_dot(point.topology, path)
        assert path.read_text().startswith("digraph")
