"""Per-stage memoization: fingerprint properties, invalidation scoping,
warm/cold bit-identity and failure-caching semantics
(:mod:`repro.engine.stagecache` + the :mod:`repro.core.pipeline` threading).
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.core.config import SynthesisConfig
from repro.core.frequency_sweep import sweep_frequencies
from repro.core.phase1 import phase1_candidate
from repro.core.pipeline import (
    DEFAULT_STAGE_NAMES,
    FlowContext,
    Pipeline,
    PlacementLPStage,
    RoutingStage,
    Stage,
    StageFailure,
    StageTimings,
    build_pipeline,
)
from repro.core.synthesis import synthesize
from repro.engine.stagecache import (
    StageCache,
    format_stage_cache_summary,
    merge_stage_stats,
    open_stage_cache,
)
from repro.noc.export import design_point_to_dict

CONFIG = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))


@pytest.fixture
def ctx(tiny_specs):
    core_spec, comm_spec = tiny_specs
    return FlowContext.build(core_spec, comm_spec, config=CONFIG)


@pytest.fixture
def ok_assignment(ctx):
    """A candidate that survives the full default pipeline."""
    pipeline = build_pipeline()
    for count in range(2, 6):
        assignment = phase1_candidate(ctx.graph, ctx.config, count)
        if pipeline.evaluate(ctx, assignment).ok:
            return assignment
    raise AssertionError("no switch count in 2..5 yields a valid candidate")


def _cache(tmp_path, name="stages"):
    return open_stage_cache(tmp_path / name)


def _with_config(ctx, config):
    return dataclasses.replace(ctx, config=config)


class TestFingerprintProperties:
    """The stated invariants of stage fingerprints (satellite 3)."""

    def test_dict_field_order_invariance(self, ctx, ok_assignment, tmp_path):
        """Reordering the core_centers dict must not move any fingerprint:
        the canonical encoder hashes dicts in sorted-key order."""
        pipeline = build_pipeline()
        cache = _cache(tmp_path)
        first = pipeline.evaluate(ctx, ok_assignment, stage_cache=cache)
        reordered = dataclasses.replace(
            ctx,
            core_centers=dict(reversed(list(ctx.core_centers.items()))),
        )
        second = pipeline.evaluate(
            reordered, ok_assignment, stage_cache=cache
        )
        assert first.stage_fingerprints == second.stage_fingerprints
        assert all(
            fp is not None for fp in first.stage_fingerprints.values()
        )
        # ... and identical fingerprints mean the rerun was served entirely
        # from the cache.
        assert second.cached_stages == list(DEFAULT_STAGE_NAMES)

    def test_unaffected_field_touches_only_metrics(
        self, ctx, ok_assignment, tmp_path
    ):
        """The metrics objective enters no upstream stage's inputs, so
        flipping it re-fingerprints metrics and nothing else."""
        pipeline = build_pipeline()
        cache = _cache(tmp_path)
        base = pipeline.evaluate(ctx, ok_assignment, stage_cache=cache)
        assert base.ok
        adjacent = pipeline.evaluate(
            _with_config(ctx, ctx.config.with_(objective="latency")),
            ok_assignment,
            stage_cache=cache,
        )
        for name in DEFAULT_STAGE_NAMES:
            if name == "metrics":
                assert (base.stage_fingerprints[name]
                        != adjacent.stage_fingerprints[name])
            else:
                assert (base.stage_fingerprints[name]
                        == adjacent.stage_fingerprints[name])
        # Every stage but the invalidated one replays from disk.
        assert adjacent.cached_stages == [
            n for n in DEFAULT_STAGE_NAMES if n != "metrics"
        ]
        assert cache.counters["metrics"].misses == 2

    def test_floorplan_knob_reuses_every_upstream_stage(
        self, ctx, ok_assignment, tmp_path
    ):
        """A floorplan-only knob (seed here; restarts behaves identically)
        leaves precheck/skeleton/routing/placement_lp untouched."""
        pipeline = build_pipeline()
        cache = _cache(tmp_path)
        base = pipeline.evaluate(ctx, ok_assignment, stage_cache=cache)
        bumped = pipeline.evaluate(
            _with_config(ctx, ctx.config.with_(seed=1234)),
            ok_assignment,
            stage_cache=cache,
        )
        upstream = ("precheck", "skeleton", "routing", "placement_lp")
        for name in upstream:
            assert (base.stage_fingerprints[name]
                    == bumped.stage_fingerprints[name])
        assert (base.stage_fingerprints["floorplan"]
                != bumped.stage_fingerprints["floorplan"])
        assert all(name in bumped.cached_stages for name in upstream)

    def test_salt_bump_invalidates_stage_and_downstream_only(
        self, ctx, ok_assignment, tmp_path
    ):
        cache = _cache(tmp_path)
        base = build_pipeline().evaluate(
            ctx, ok_assignment, stage_cache=cache
        )
        bumped_stage = RoutingStage()
        bumped_stage.salt = "v2-test"
        bumped = build_pipeline(
            overrides={"routing": bumped_stage}
        ).evaluate(ctx, ok_assignment, stage_cache=cache)
        for name in ("precheck", "skeleton"):
            assert (base.stage_fingerprints[name]
                    == bumped.stage_fingerprints[name])
        for name in ("routing", "placement_lp", "floorplan", "verify",
                     "metrics"):
            assert (base.stage_fingerprints[name]
                    != bumped.stage_fingerprints[name])

    def test_declaration_edit_invalidates_stage_and_downstream_only(
        self, ctx, ok_assignment, tmp_path
    ):
        cache = _cache(tmp_path)
        base = build_pipeline().evaluate(
            ctx, ok_assignment, stage_cache=cache
        )
        widened_stage = PlacementLPStage()
        widened_stage.context_inputs = ("core_centers", "die_bounds", "graph")
        widened = build_pipeline(
            overrides={"placement_lp": widened_stage}
        ).evaluate(ctx, ok_assignment, stage_cache=cache)
        for name in ("precheck", "skeleton", "routing"):
            assert (base.stage_fingerprints[name]
                    == widened.stage_fingerprints[name])
        for name in ("placement_lp", "floorplan", "verify", "metrics"):
            assert (base.stage_fingerprints[name]
                    != widened.stage_fingerprints[name])


class TestWarmIdentity:
    """Warm stage-cached runs must be bit-identical to cold ones."""

    def test_synthesize_warm_bit_identical(self, tiny_specs, tmp_path):
        core_spec, comm_spec = tiny_specs
        cold_cache = _cache(tmp_path)
        cold = synthesize(
            core_spec, comm_spec, config=CONFIG, stage_cache=cold_cache
        )
        plain = synthesize(core_spec, comm_spec, config=CONFIG)
        warm_cache = _cache(tmp_path)
        timings = StageTimings()
        warm = synthesize(
            core_spec, comm_spec, config=CONFIG, stage_cache=warm_cache,
            timings=timings,
        )

        def canonical(result):
            return [design_point_to_dict(p) for p in result.points]

        assert canonical(cold) == canonical(plain) == canonical(warm)
        # Stronger than dict equality: each replayed point is pickle-byte
        # identical to its cold twin.
        for a, b in zip(cold.points, warm.points):
            assert pickle.dumps(a) == pickle.dumps(b)

        cold_stats = cold_cache.stats_dict()
        assert sum(r["misses"] for r in cold_stats.values()) > 0
        assert sum(r["bytes_written"] for r in cold_stats.values()) > 0
        warm_stats = warm_cache.stats_dict()
        assert warm_stats
        assert all(r["misses"] == 0 for r in warm_stats.values())
        assert sum(r["hits"] for r in warm_stats.values()) > 0
        assert sum(r["bytes_read"] for r in warm_stats.values()) > 0
        # The warm run still reports per-stage timings (the originals,
        # replayed), flagged as cached.
        assert timings.any_cached
        assert "cached" in timings.report()

    def test_sweep_warm_adjacent_runs_only_delta_stages(
        self, tiny_specs, tmp_path
    ):
        core_spec, comm_spec = tiny_specs
        cache_dir = str(tmp_path / "stages")
        freqs = (400.0, 600.0)
        adjacent = CONFIG.with_(objective="latency")

        reference = sweep_frequencies(
            core_spec, comm_spec, freqs, config=adjacent
        )
        cold = sweep_frequencies(
            core_spec, comm_spec, freqs, config=CONFIG,
            stage_cache_dir=cache_dir,
        )
        warm = sweep_frequencies(
            core_spec, comm_spec, freqs, config=adjacent,
            stage_cache_dir=cache_dir,
        )

        assert cold.stage_cache and warm.stage_cache
        missed = sorted(
            name for name, row in warm.stage_cache.items() if row["misses"]
        )
        assert missed == ["metrics"]
        assert sum(r["hits"] for r in warm.stage_cache.values()) > 0

        def canonical(sweep):
            return {
                freq: [design_point_to_dict(p) for p in result.points]
                for freq, result in sweep.per_frequency.items()
            }

        assert canonical(warm) == canonical(reference)


class TestBatchedCampaignWarmIdentity:
    """``batch=K`` must be invisible to every cache layer: the synthesis
    stages and the per-replication simulation entries a solo campaign
    writes serve a batched rerun in full — and vice versa."""

    KWARGS = dict(
        benchmark="d26_media",
        injection_scales=(0.1, 0.5),
        cycles=1_200,
        warmup=120,
        config=SynthesisConfig(max_ill=25, switch_count_range=(3, 5)),
        scenarios=("bernoulli",),
        seeds=(0, 1, 2),
    )

    def _run(self, store=None, batch=None):
        from repro.experiments.simulation_validation import (
            run_simulation_validation,
        )

        return run_simulation_validation(
            jobs=1, store=store, batch=batch, **self.KWARGS
        )

    def test_batched_warm_over_cold_solo_campaign(self, tmp_path):
        from repro.engine import ResultStore

        cold = self._run(store=ResultStore(tmp_path))
        warm_store = ResultStore(tmp_path)
        warm = self._run(store=warm_store, batch=2)
        assert pickle.dumps(warm.rows) == pickle.dumps(cold.rows)
        # 2 scales x 3 seeds simulation entries plus the synthesis —
        # every one a hit, none recomputed, no batch-shaped entries.
        assert (warm_store.hits, warm_store.misses) == (7, 0)
        assert warm_store.stats().by_task_type == {
            "SimulationTask": 6, "SynthesisTask": 1,
        }

    def test_solo_warm_over_cold_batched_campaign(self, tmp_path):
        from repro.engine import ResultStore

        cold = self._run(store=ResultStore(tmp_path), batch=3)
        warm_store = ResultStore(tmp_path)
        warm = self._run(store=warm_store)
        assert pickle.dumps(warm.rows) == pickle.dumps(cold.rows)
        assert (warm_store.hits, warm_store.misses) == (7, 0)


CALLS = {"reject": 0, "explode": 0, "counting": 0}


class RejectingStage(Stage):
    name = "reject"
    cacheable = True

    def run(self, ctx, state):
        CALLS["reject"] += 1
        raise StageFailure("deterministic rejection")


class ExplodingStage(Stage):
    name = "explode"
    cacheable = True

    def run(self, ctx, state):
        CALLS["explode"] += 1
        raise RuntimeError("hard error, not a rejection")


class CountingStage(Stage):
    name = "counting"  # cacheable defaults to False

    def run(self, ctx, state):
        CALLS["counting"] += 1


class UnstableStage(Stage):
    """cacheable, but holds a handle with no stable representation."""

    name = "unstable"
    cacheable = True

    def __init__(self):
        self.handle = object()

    def run(self, ctx, state):
        CALLS.setdefault("unstable", 0)
        CALLS["unstable"] += 1


class TestFailureSemantics:
    def test_stage_failure_is_cached_and_replayed(
        self, ctx, ok_assignment, tmp_path
    ):
        CALLS["reject"] = 0
        pipeline = Pipeline([RejectingStage()])
        cache = _cache(tmp_path)
        first = pipeline.evaluate(ctx, ok_assignment, stage_cache=cache)
        assert first.failed_stage == "reject"
        assert CALLS["reject"] == 1
        second = pipeline.evaluate(ctx, ok_assignment, stage_cache=cache)
        assert CALLS["reject"] == 1  # replayed, not re-run
        assert second.failed_stage == "reject"
        assert second.failure_reason == "deterministic rejection"
        assert second.cached_stages == ["reject"]

    def test_hard_error_is_never_cached(self, ctx, ok_assignment, tmp_path):
        CALLS["explode"] = 0
        pipeline = Pipeline([ExplodingStage()])
        cache = _cache(tmp_path)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                pipeline.evaluate(ctx, ok_assignment, stage_cache=cache)
        assert CALLS["explode"] == 2  # re-ran: no record was written
        assert cache.counters["explode"].misses == 2
        assert cache.counters["explode"].bytes_written == 0
        assert cache.store.stats().entries == 0

    def test_opt_out_stage_runs_live(self, ctx, ok_assignment, tmp_path):
        CALLS["counting"] = 0
        pipeline = Pipeline([CountingStage()])
        cache = _cache(tmp_path)
        for _ in range(2):
            state = pipeline.evaluate(
                ctx, ok_assignment, stage_cache=cache
            )
            assert state.stage_fingerprints["counting"] is None
        assert CALLS["counting"] == 2
        assert "counting" not in cache.counters

    def test_unfingerprintable_stage_degrades_to_uncached(
        self, ctx, ok_assignment, tmp_path
    ):
        pipeline = Pipeline([UnstableStage()])
        cache = _cache(tmp_path)
        state = pipeline.evaluate(ctx, ok_assignment, stage_cache=cache)
        assert state.ok
        assert state.stage_fingerprints["unstable"] is None
        assert cache.store.stats().entries == 0


class TestStatsPlumbing:
    def test_merge_stage_stats_accumulates(self):
        into = {}
        merge_stage_stats(into, {"routing": {"hits": 1, "misses": 2}})
        merge_stage_stats(
            into,
            {"routing": {"hits": 3, "bytes_read": 10},
             "metrics": {"misses": 1}},
        )
        assert into["routing"]["hits"] == 4
        assert into["routing"]["misses"] == 2
        assert into["routing"]["bytes_read"] == 10
        assert into["metrics"]["misses"] == 1
        assert merge_stage_stats({}, None) == {}

    def test_format_summary_shape(self):
        stats = {
            "skeleton": {"hits": 2, "misses": 1, "bytes_read": 2048,
                         "bytes_written": 1024},
            "metrics": {"hits": 0, "misses": 3, "bytes_read": 0,
                        "bytes_written": 4096},
        }
        text = format_stage_cache_summary(stats)
        lines = text.splitlines()
        assert lines[0].split() == ["stage", "hits", "misses", "read",
                                    "written"]
        assert any(line.lstrip().startswith("skeleton") for line in lines)
        assert lines[-1].split()[0] == "total"
        assert "2.0KiB" in text  # human-readable byte columns

    def test_spec_reopens_equivalent_cache(self, tmp_path):
        cache = _cache(tmp_path)
        directory, salt = cache.spec()
        reopened = open_stage_cache(directory, salt=salt)
        assert reopened.spec() == (directory, salt)
        assert isinstance(reopened, StageCache)
