"""CLI result-store plumbing: ``cache`` subcommand, ``--cache/--cache-dir``
flags, and the clear-error contract for unusable cache directories."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.spec.io import save_comm_spec_text, save_core_spec_text


@pytest.fixture
def spec_files(tmp_path, tiny_specs):
    core_spec, comm_spec = tiny_specs
    cores_path = tmp_path / "cores.txt"
    comm_path = tmp_path / "comm.txt"
    save_core_spec_text(core_spec, cores_path)
    save_comm_spec_text(comm_spec, comm_path)
    return str(cores_path), str(comm_path)


def _synth_args(spec_files, *extra):
    cores, comm = spec_files
    return [
        "synth", "--cores", cores, "--comm", comm,
        "--max-ill", "10", "--switches", "2:3", *extra,
    ]


class TestSynthCache:
    def test_cold_then_warm_same_output(self, spec_files, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(_synth_args(spec_files, "--cache-dir", cache_dir)) == 0
        cold_out = capsys.readouterr().out
        assert main(_synth_args(spec_files, "--cache-dir", cache_dir)) == 0
        warm_out = capsys.readouterr().out
        assert warm_out == cold_out
        assert "best design point" in warm_out

    def test_warm_run_reports_cached_stage_timings(
        self, spec_files, tmp_path, capsys
    ):
        """Timings persist with the cached result: a warm run reports the
        original per-stage breakdown with the ``(cached)`` marker instead
        of declaring the timings missing."""
        cache_dir = str(tmp_path / "store")
        args = _synth_args(
            spec_files, "--cache-dir", cache_dir, "--stage-timings"
        )
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        assert "per-stage timings" in cold_out
        assert "stage cache:" in cold_out  # per-stage memoization summary
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "per-stage timings" in out
        assert "cached)" in out
        assert "best design point" in out

    def test_config_change_is_a_miss(self, spec_files, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(_synth_args(spec_files, "--cache-dir", cache_dir)) == 0
        assert main(_synth_args(
            spec_files, "--cache-dir", cache_dir, "--frequency", "500",
        )) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "SynthesisTask: 2" in out
        # Stage memoization files its records per stage in the same store.
        assert "stage records (per-stage memoization):" in out
        assert "skeleton" in out


class TestSweepCache:
    def test_sweep_cache_roundtrip(self, spec_files, tmp_path, capsys):
        cores, comm = spec_files
        cache_dir = str(tmp_path / "store")
        args = [
            "sweep", "--cores", cores, "--comm", comm, "--max-ill", "10",
            "--switches", "2:3", "--frequencies", "400,600", "--jobs", "1",
            "--quiet", "--cache-dir", cache_dir,
        ]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == cold_out


class TestCacheSubcommand:
    def test_stats_empty(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out

    def test_verify_flags_corruption_and_repairs(
        self, spec_files, tmp_path, capsys
    ):
        cache_dir = tmp_path / "store"
        assert main(_synth_args(spec_files, "--cache-dir", str(cache_dir))) == 0
        entry = next(cache_dir.glob("objects/??/*.pkl"))
        entry.write_bytes(b"zap")
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 1
        assert "1 bad" in capsys.readouterr().out
        assert main([
            "cache", "verify", "--cache-dir", str(cache_dir), "--repair",
        ]) == 0
        assert "1 removed" in capsys.readouterr().out
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0

    def test_clear(self, spec_files, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(_synth_args(spec_files, "--cache-dir", cache_dir)) == 0
        capsys.readouterr()
        # A cached synth writes the whole-run entry plus its stage records.
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries: 0" in capsys.readouterr().out


class TestInvalidCacheDir:
    """An unusable --cache-dir must produce a clear error (exit 2), not a
    traceback out of the store layer."""

    def test_cache_dir_is_a_file(self, spec_files, tmp_path, capsys):
        blocker = tmp_path / "occupied"
        blocker.write_text("I am a file")
        rc = main(_synth_args(spec_files, "--cache-dir", str(blocker)))
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "not a directory" in err

    def test_cache_dir_under_a_file(self, spec_files, tmp_path, capsys):
        blocker = tmp_path / "occupied"
        blocker.write_text("I am a file")
        rc = main(_synth_args(
            spec_files, "--cache-dir", str(blocker / "nested"),
        ))
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "cannot create cache directory" in err

    def test_cache_subcommand_rejects_bad_dir(self, tmp_path, capsys):
        blocker = tmp_path / "occupied"
        blocker.write_text("I am a file")
        rc = main(["cache", "stats", "--cache-dir", str(blocker)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_sim_rejects_bad_dir_before_synthesis(self, tmp_path, capsys):
        blocker = tmp_path / "occupied"
        blocker.write_text("I am a file")
        rc = main([
            "sim", "--benchmark", "d26_media", "--cache-dir", str(blocker),
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
