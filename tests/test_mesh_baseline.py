"""Optimised-mesh baseline (repro.core.mesh_baseline, Sec. VIII-E)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.mesh_baseline import _xyz_route, synthesize_mesh
from repro.core.synthesis import synthesize


class TestXyzRoute:
    def test_same_slot(self):
        assert _xyz_route((0, 1, 1), (0, 1, 1)) == [(0, 1, 1)]

    def test_x_then_y_then_z(self):
        path = _xyz_route((0, 0, 0), (1, 2, 1))
        assert path[0] == (0, 0, 0)
        assert path[-1] == (1, 2, 1)
        # X moves first.
        assert path[1] == (0, 1, 0)
        # Layer changes last.
        layers = [s[0] for s in path]
        assert layers == sorted(layers)

    def test_step_count(self):
        path = _xyz_route((0, 0, 0), (2, 3, 1))
        assert len(path) == 1 + 3 + 1 + 2  # start + dx + dy + dz

    def test_negative_directions(self):
        path = _xyz_route((2, 3, 2), (0, 0, 0))
        assert path[-1] == (0, 0, 0)
        assert len(path) == 1 + 3 + 2 + 2


class TestMeshSynthesis:
    def test_basic_run(self, small_specs):
        core_spec, comm_spec = small_specs
        design = synthesize_mesh(core_spec, comm_spec)
        assert design.total_power_mw > 0
        assert design.avg_latency_cycles >= 1.0
        assert design.grid_nx * design.grid_ny >= 3  # >= cores per layer

    def test_routes_complete_and_valid(self, small_specs):
        core_spec, comm_spec = small_specs
        design = synthesize_mesh(core_spec, comm_spec)
        design.topology.validate_routes()
        assert len(design.topology.routes) == len(comm_spec)

    def test_unused_switches_pruned(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        design = synthesize_mesh(core_spec, comm_spec)
        used = set()
        for link in design.topology.links:
            for kind, idx in (link.src, link.dst):
                if kind == "switch":
                    used.add(idx)
        assert used == set(range(len(design.topology.switches)))

    def test_mapping_keeps_cores_in_their_layer(self, small_specs):
        core_spec, comm_spec = small_specs
        design = synthesize_mesh(core_spec, comm_spec)
        for core, slot in design.mapping.items():
            assert slot[0] == core_spec.layer_of(core)

    def test_mapping_injective(self, small_specs):
        core_spec, comm_spec = small_specs
        design = synthesize_mesh(core_spec, comm_spec)
        slots = list(design.mapping.values())
        assert len(slots) == len(set(slots))

    def test_deterministic(self, small_specs):
        core_spec, comm_spec = small_specs
        a = synthesize_mesh(core_spec, comm_spec, anneal_iterations=500)
        b = synthesize_mesh(core_spec, comm_spec, anneal_iterations=500)
        assert a.total_power_mw == pytest.approx(b.total_power_mw)
        assert a.mapping == b.mapping

    def test_custom_beats_mesh(self, small_specs):
        """The Fig. 23 shape: the synthesized custom topology consumes less
        power than the optimised mesh."""
        core_spec, comm_spec = small_specs
        cfg = SynthesisConfig(max_ill=12)
        custom = synthesize(core_spec, comm_spec, config=cfg).best_power()
        mesh = synthesize_mesh(core_spec, comm_spec, config=cfg)
        assert custom.total_power_mw < mesh.total_power_mw
