"""Constrained standard-floorplanner baseline (repro.floorplan.constrained)."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan.constrained import constrained_insert
from repro.floorplan.geometry import Rect
from repro.floorplan.inserter import NewComponent
from repro.floorplan.placement import ChipFloorplan, PlacedComponent


def _cores(*rects, layer=0):
    return [
        PlacedComponent(name=f"core{i}", kind="core", rect=r, layer=layer)
        for i, r in enumerate(rects)
    ]


class TestConstrainedInsert:
    def test_no_new_components_is_identity(self):
        cores = _cores(Rect(0, 0, 1, 1), Rect(2, 0, 1, 1))
        out = constrained_insert(cores, [])
        assert out == list(cores)

    def test_result_is_legal(self):
        cores = _cores(Rect(0, 0, 1, 1), Rect(1.2, 0, 1, 1), Rect(0, 1.2, 1, 1))
        new = [
            NewComponent("sw0", "switch", 0.3, 0.3, (0.6, 0.6)),
            NewComponent("sw1", "switch", 0.3, 0.3, (1.5, 1.5)),
        ]
        out = constrained_insert(cores, new, seed=1, moves=600)
        fp = ChipFloorplan(components=out)
        assert fp.is_legal()
        assert len(out) == 5

    def test_core_relative_order_preserved(self):
        """The defining constraint: cores never swap relative positions."""
        cores = _cores(
            Rect(0, 0, 1, 1), Rect(2, 0, 1, 1), Rect(4, 0, 1, 1)
        )
        new = [NewComponent("sw0", "switch", 0.5, 0.5, (2.5, 0.5))]
        out = constrained_insert(cores, new, seed=2, moves=800)
        xs = {c.name: c.rect.x for c in out if c.kind == "core"}
        assert xs["core0"] < xs["core1"] < xs["core2"]

    def test_deterministic(self):
        cores = _cores(Rect(0, 0, 1, 1), Rect(1.5, 0, 1, 1))
        new = [NewComponent("sw0", "switch", 0.4, 0.4, (1.0, 1.0))]
        a = constrained_insert(cores, new, seed=9, moves=300)
        b = constrained_insert(cores, new, seed=9, moves=300)
        assert [(c.name, c.rect) for c in a] == [(c.name, c.rect) for c in b]

    def test_mixed_layers_rejected(self):
        comps = [
            PlacedComponent("a", "core", Rect(0, 0, 1, 1), 0),
            PlacedComponent("b", "core", Rect(2, 0, 1, 1), 1),
        ]
        with pytest.raises(FloorplanError):
            constrained_insert(comps, [NewComponent("s", "switch", 0.1, 0.1, (0, 0))])

    def test_switch_near_ideal_when_space_allows(self):
        # A lone pair of cores with plenty of room: the displacement term
        # should keep the switch near its ideal centre.
        cores = _cores(Rect(0, 0, 1, 1), Rect(3, 0, 1, 1))
        new = [NewComponent("sw0", "switch", 0.4, 0.4, (2.0, 0.5))]
        out = constrained_insert(cores, new, seed=3, moves=1500)
        sw = [c for c in out if c.name == "sw0"][0]
        dist = abs(sw.center[0] - 2.0) + abs(sw.center[1] - 0.5)
        assert dist < 2.5
