"""Shared fixtures: small, fast synthetic designs used across the suite."""

from __future__ import annotations

import pytest

from repro.models.library import default_library
from repro.spec.comm_spec import CommSpec, MessageType, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: annealer/simulator/experiment-heavy test "
        "(deselect with -m 'not slow', e.g. via make test-fast)",
    )


def grid_core_spec(n: int, num_layers: int, side: float = 1.0, gap: float = 0.3) -> CoreSpec:
    """n unit cores laid out on a non-overlapping grid, round-robin layers.

    Deterministic legal floorplan: cores of each layer tile a small grid.
    """
    cores = []
    per_layer = {}
    for i in range(n):
        layer = i % num_layers
        slot = per_layer.get(layer, 0)
        per_layer[layer] = slot + 1
        cols = 3
        x = (slot % cols) * (side + gap)
        y = (slot // cols) * (side + gap)
        cores.append(Core(f"C{i}", side, side, x, y, layer))
    return CoreSpec(cores=cores)


@pytest.fixture
def contended_topo():
    from _simtopo import contended_topology

    return contended_topology()


@pytest.fixture
def library():
    return default_library()


@pytest.fixture
def tiny_specs():
    """6 cores on 2 layers, a ring of requests plus one response flow."""
    core_spec = grid_core_spec(6, 2)
    flows = [
        TrafficFlow("C0", "C1", 200, 8),
        TrafficFlow("C1", "C2", 150, 8),
        TrafficFlow("C2", "C3", 400, 8),
        TrafficFlow("C3", "C4", 100, 8),
        TrafficFlow("C4", "C5", 300, 8),
        TrafficFlow("C5", "C0", 120, 10, MessageType.RESPONSE),
    ]
    return core_spec, CommSpec(flows=flows)


@pytest.fixture
def small_specs():
    """9 cores on 3 layers with mixed request/response traffic."""
    core_spec = grid_core_spec(9, 3)
    flows = [
        TrafficFlow("C0", "C3", 500, 10),
        TrafficFlow("C3", "C0", 350, 10, MessageType.RESPONSE),
        TrafficFlow("C0", "C1", 220, 8),
        TrafficFlow("C1", "C4", 180, 8),
        TrafficFlow("C4", "C7", 260, 12),
        TrafficFlow("C7", "C4", 140, 12, MessageType.RESPONSE),
        TrafficFlow("C2", "C5", 90, 14),
        TrafficFlow("C5", "C8", 310, 9),
        TrafficFlow("C8", "C2", 130, 14, MessageType.RESPONSE),
        TrafficFlow("C6", "C0", 70, 16),
        TrafficFlow("C3", "C6", 240, 10),
    ]
    return core_spec, CommSpec(flows=flows)


@pytest.fixture
def single_layer_specs():
    """8 cores, one layer — exercises the 2-D ([16]) flow."""
    core_spec = grid_core_spec(8, 1)
    flows = [
        TrafficFlow("C0", "C1", 400, 8),
        TrafficFlow("C1", "C2", 300, 8),
        TrafficFlow("C2", "C3", 200, 8),
        TrafficFlow("C4", "C5", 350, 8),
        TrafficFlow("C5", "C6", 250, 8),
        TrafficFlow("C6", "C7", 150, 8),
        TrafficFlow("C7", "C0", 100, 12),
        TrafficFlow("C3", "C4", 120, 12),
    ]
    return core_spec, CommSpec(flows=flows)
