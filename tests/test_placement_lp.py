"""Switch-position LP (repro.core.placement, Sec. VII)."""

import pytest

from repro.core.placement import optimise_switch_positions, placement_objective
from repro.errors import LPError
from repro.noc.topology import Topology


def _one_switch_two_cores():
    topo = Topology(frequency_mhz=400.0, width_bits=32)
    topo.add_switch(0)
    topo.attach_core(0, 0, 0)
    topo.attach_core(1, 0, 0)
    inj0, ej0 = topo.injection_link(0), topo.ejection_link(0)
    inj1, ej1 = topo.injection_link(1), topo.ejection_link(1)
    topo.record_route((0, 1), [inj0.id, ej1.id], [0], 100.0)
    topo.record_route((1, 0), [inj1.id, ej0.id], [0], 100.0)
    return topo


class TestSwitchPlacement:
    def test_equal_weights_land_between_cores(self):
        topo = _one_switch_two_cores()
        centers = {0: (0.0, 0.0), 1: (4.0, 0.0)}
        optimise_switch_positions(topo, centers, 10.0, 10.0)
        sw = topo.switches[0]
        # Weighted-median along x: any point within [0, 4] is optimal; the
        # objective value is what matters.
        assert 0.0 <= sw.x <= 4.0
        obj = placement_objective(topo, centers)
        # inj+ej per core: 2 links * 100 MB/s * distance; total spans 4 mm.
        assert obj == pytest.approx(2 * 100.0 * 4.0, rel=1e-6)

    def test_heavier_core_pulls_switch(self):
        topo = Topology(frequency_mhz=400.0, width_bits=32)
        topo.add_switch(0)
        topo.attach_core(0, 0, 0)
        topo.attach_core(1, 0, 0)
        inj0 = topo.injection_link(0)
        ej1 = topo.ejection_link(1)
        # One heavy flow 0 -> 1: the injection link of core0 and ejection of
        # core1 carry it; plus a tiny reverse flow.
        topo.record_route((0, 1), [inj0.id, ej1.id], [0], 1000.0)
        centers = {0: (0.0, 0.0), 1: (4.0, 0.0)}
        optimise_switch_positions(topo, centers, 10.0, 10.0)
        # Both endpoints weigh 1000 each: still anywhere on the segment. Now
        # bias core 0 with an extra flow to itself... instead assert the LP
        # at least stays on the segment and achieves the LP optimum.
        sw = topo.switches[0]
        assert 0.0 <= sw.x <= 4.0
        assert placement_objective(topo, centers) == pytest.approx(4000.0, rel=1e-6)

    def test_switch_chain_positions(self):
        # core0 -- sw0 -- sw1 -- core1, heavy on the sw-sw link: switches
        # colocate between the cores.
        topo = Topology(frequency_mhz=400.0, width_bits=32)
        topo.add_switch(0)
        topo.add_switch(0)
        topo.attach_core(0, 0, 0)
        topo.attach_core(1, 1, 0)
        link = topo.add_switch_link(0, 1)
        inj, ej = topo.injection_link(0), topo.ejection_link(1)
        topo.record_route((0, 1), [inj.id, link.id, ej.id], [0, 1], 500.0)
        centers = {0: (0.0, 0.0), 1: (6.0, 0.0)}
        optimise_switch_positions(topo, centers, 10.0, 10.0)
        s0, s1 = topo.switches
        # Total weighted length is 500 * 6 regardless of split; check optimum.
        assert placement_objective(topo, centers) == pytest.approx(3000.0, rel=1e-6)
        assert 0.0 <= s0.x <= 6.0 and 0.0 <= s1.x <= 6.0

    def test_positions_respect_die_bounds(self):
        topo = _one_switch_two_cores()
        centers = {0: (0.0, 0.0), 1: (4.0, 0.0)}
        optimise_switch_positions(topo, centers, 2.0, 2.0)
        sw = topo.switches[0]
        assert 0.0 <= sw.x <= 2.0
        assert 0.0 <= sw.y <= 2.0

    def test_disconnected_switch_centred(self):
        topo = _one_switch_two_cores()
        lonely = topo.add_switch(0)
        centers = {0: (0.0, 0.0), 1: (4.0, 0.0)}
        optimise_switch_positions(topo, centers, 10.0, 8.0)
        assert (lonely.x, lonely.y) == (5.0, 4.0)

    def test_empty_topology(self):
        topo = Topology(frequency_mhz=400.0, width_bits=32)
        assert optimise_switch_positions(topo, {}, 10.0, 10.0) == 0.0

    def test_bad_bounds_rejected(self):
        topo = _one_switch_two_cores()
        with pytest.raises(LPError):
            optimise_switch_positions(topo, {0: (0, 0), 1: (1, 0)}, 0.0, 5.0)

    def test_simplex_backend_agrees_with_scipy(self):
        topo_a = _one_switch_two_cores()
        topo_b = _one_switch_two_cores()
        centers = {0: (0.0, 0.0), 1: (4.0, 2.0)}
        obj_a = optimise_switch_positions(topo_a, centers, 10.0, 10.0, backend="scipy")
        obj_b = optimise_switch_positions(topo_b, centers, 10.0, 10.0, backend="simplex")
        assert obj_a == pytest.approx(obj_b, rel=1e-6)
