"""Core specification (repro.spec.core_spec)."""

import pytest

from repro.errors import SpecError
from repro.spec.core_spec import Core, CoreSpec


class TestCore:
    def test_area_and_center(self):
        core = Core("A", 2.0, 1.0, 1.0, 2.0, 0)
        assert core.area == pytest.approx(2.0)
        assert core.center == pytest.approx((2.0, 2.5))

    def test_rejects_empty_name(self):
        with pytest.raises(SpecError):
            Core("", 1.0, 1.0)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(SpecError):
            Core("A", 0.0, 1.0)
        with pytest.raises(SpecError):
            Core("A", 1.0, -2.0)

    def test_rejects_negative_layer(self):
        with pytest.raises(SpecError):
            Core("A", 1.0, 1.0, layer=-1)

    def test_moved_to_preserves_other_fields(self):
        core = Core("A", 1.0, 2.0, 0.0, 0.0, 3)
        moved = core.moved_to(5.0, 6.0)
        assert (moved.x, moved.y) == (5.0, 6.0)
        assert moved.layer == 3 and moved.width == 1.0

    def test_on_layer(self):
        assert Core("A", 1.0, 1.0).on_layer(2).layer == 2


class TestCoreSpec:
    def _spec(self):
        return CoreSpec(cores=[
            Core("A", 1.0, 1.0, 0.0, 0.0, 0),
            Core("B", 1.0, 1.0, 2.0, 0.0, 0),
            Core("C", 1.0, 1.0, 0.0, 0.0, 1),
        ])

    def test_rejects_duplicate_names(self):
        with pytest.raises(SpecError):
            CoreSpec(cores=[Core("A", 1, 1), Core("A", 1, 1)])

    def test_index_and_name_lookup(self):
        spec = self._spec()
        assert spec.index_of("B") == 1
        assert spec.by_name("C").layer == 1
        with pytest.raises(SpecError):
            spec.index_of("Z")

    def test_layer_queries(self):
        spec = self._spec()
        assert spec.num_layers == 2
        assert [c.name for c in spec.cores_in_layer(0)] == ["A", "B"]
        assert spec.indices_in_layer(1) == [2]
        assert spec.layers == {0: [0, 1], 1: [2]}

    def test_total_core_area(self):
        spec = self._spec()
        assert spec.total_core_area() == pytest.approx(3.0)
        assert spec.total_core_area(layer=0) == pytest.approx(2.0)

    def test_with_positions(self):
        spec = self._spec()
        moved = spec.with_positions([(1, 1), (2, 2), (3, 3)])
        assert moved[0].x == 1 and moved[2].y == 3
        # original untouched
        assert spec[0].x == 0.0

    def test_with_positions_wrong_length(self):
        with pytest.raises(SpecError):
            self._spec().with_positions([(0, 0)])

    def test_with_layers_and_flatten(self):
        spec = self._spec()
        relayered = spec.with_layers([1, 1, 0])
        assert relayered[0].layer == 1
        flat = spec.flattened_to_2d()
        assert flat.num_layers == 1
        assert all(c.layer == 0 for c in flat)

    def test_iteration_and_len(self):
        spec = self._spec()
        assert len(spec) == 3
        assert [c.name for c in spec] == ["A", "B", "C"]
