"""Wire-length statistics (repro.noc.wire_stats, Fig. 12)."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.wire_stats import length_stats, wire_length_histogram


class TestHistogram:
    def test_basic_binning(self):
        bins = wire_length_histogram([0.1, 0.6, 1.2, 1.4], bin_width_mm=0.5)
        assert [b.count for b in bins] == [1, 1, 2]
        assert bins[0].label == "[0.00, 0.50)"

    def test_total_count_preserved(self):
        lengths = [0.3, 0.7, 2.2, 4.9, 5.0]
        bins = wire_length_histogram(lengths, 1.0)
        assert sum(b.count for b in bins) == len(lengths)

    def test_value_at_max_lands_in_last_bin(self):
        bins = wire_length_histogram([1.0], bin_width_mm=0.5, max_mm=1.0)
        assert bins[-1].count == 1

    def test_empty_input(self):
        bins = wire_length_histogram([], 0.5)
        assert len(bins) == 1 and bins[0].count == 0

    def test_explicit_max(self):
        bins = wire_length_histogram([0.1], 0.5, max_mm=2.0)
        assert len(bins) == 4

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            wire_length_histogram([1.0], 0.0)
        with pytest.raises(ValueError):
            wire_length_histogram([-1.0], 0.5)

    @given(st.lists(st.floats(min_value=0.0, max_value=20.0), max_size=50))
    def test_counts_always_total(self, lengths):
        bins = wire_length_histogram(lengths, 0.7)
        assert sum(b.count for b in bins) == len(lengths)


class TestLengthStats:
    def test_stats(self):
        mean, mx, total = length_stats([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert mx == 3.0
        assert total == pytest.approx(6.0)

    def test_empty(self):
        assert length_stats([]) == (0.0, 0.0, 0.0)


class TestMaxMmValidation:
    def test_rejects_non_positive_max(self):
        with pytest.raises(ValueError):
            wire_length_histogram([1.0], 0.5, max_mm=0.0)
        with pytest.raises(ValueError):
            wire_length_histogram([1.0], 0.5, max_mm=-2.0)

    def test_annotation_is_optional_float(self):
        import typing

        hints = typing.get_type_hints(wire_length_histogram)
        assert hints["max_mm"] == typing.Optional[float]
