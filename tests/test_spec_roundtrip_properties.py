"""Property-based round-trips of the specification file formats."""

import string

from hypothesis import given, settings, strategies as st

from repro.spec.comm_spec import CommSpec, MessageType, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec
from repro.spec.io import (
    comm_spec_from_dict,
    comm_spec_to_dict,
    core_spec_from_dict,
    core_spec_to_dict,
)

NAME = st.text(alphabet=string.ascii_uppercase + string.digits, min_size=1, max_size=8)
DIM = st.floats(min_value=0.1, max_value=20.0, allow_nan=False)
POS = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def core_specs(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    names = draw(st.lists(NAME, min_size=n, max_size=n, unique=True))
    cores = []
    for i, name in enumerate(names):
        cores.append(Core(
            name=name,
            width=draw(DIM), height=draw(DIM),
            x=draw(POS), y=draw(POS),
            layer=draw(st.integers(min_value=0, max_value=3)),
        ))
    return CoreSpec(cores=cores)


@st.composite
def comm_specs(draw):
    n_names = draw(st.integers(min_value=2, max_value=8))
    names = draw(st.lists(NAME, min_size=n_names, max_size=n_names, unique=True))
    n_flows = draw(st.integers(min_value=1, max_value=12))
    flows = []
    pairs = set()
    for _ in range(n_flows):
        src = draw(st.sampled_from(names))
        dst = draw(st.sampled_from(names))
        if src == dst or (src, dst) in pairs:
            continue
        pairs.add((src, dst))
        flows.append(TrafficFlow(
            src=src, dst=dst,
            bandwidth=draw(st.floats(min_value=0.1, max_value=5000.0)),
            latency=draw(st.floats(min_value=0.1, max_value=100.0)),
            message_type=draw(st.sampled_from(list(MessageType))),
        ))
    if not flows:
        flows = [TrafficFlow(names[0], names[1], 1.0, 1.0)]
    return CommSpec(flows=flows)


class TestDictRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(spec=core_specs())
    def test_core_spec_dict_roundtrip(self, spec):
        loaded = core_spec_from_dict(core_spec_to_dict(spec))
        assert loaded.names == spec.names
        for a, b in zip(loaded, spec):
            assert (a.width, a.height, a.x, a.y, a.layer) == (
                b.width, b.height, b.x, b.y, b.layer
            )

    @settings(max_examples=60, deadline=None)
    @given(spec=comm_specs())
    def test_comm_spec_dict_roundtrip(self, spec):
        loaded = comm_spec_from_dict(comm_spec_to_dict(spec))
        assert len(loaded) == len(spec)
        for a, b in zip(loaded, spec):
            assert (a.src, a.dst, a.bandwidth, a.latency, a.message_type) == (
                b.src, b.dst, b.bandwidth, b.latency, b.message_type
            )


class TestFileRoundTrips:
    @settings(max_examples=20, deadline=None)
    @given(spec=core_specs())
    def test_core_spec_json_file(self, spec, tmp_path_factory):
        from repro.spec.io import load_core_spec_json, save_core_spec_json

        path = tmp_path_factory.mktemp("rt") / "cores.json"
        save_core_spec_json(spec, path)
        loaded = load_core_spec_json(path)
        assert loaded.names == spec.names

    @settings(max_examples=20, deadline=None)
    @given(spec=comm_specs())
    def test_comm_spec_json_file(self, spec, tmp_path_factory):
        from repro.spec.io import load_comm_spec_json, save_comm_spec_json

        path = tmp_path_factory.mktemp("rt") / "comm.json"
        save_comm_spec_json(spec, path)
        loaded = load_comm_spec_json(path)
        assert [f.src for f in loaded] == [f.src for f in spec]
