"""Markdown report generation (repro.reports)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.design_point import SynthesisResult
from repro.core.synthesis import SunFloor3D
from repro.reports import render_point_markdown, render_result_markdown, save_report


@pytest.fixture(scope="module")
def synth():
    from tests.conftest import grid_core_spec
    from repro.spec.comm_spec import CommSpec, TrafficFlow

    core_spec = grid_core_spec(6, 2)
    comm_spec = CommSpec(flows=[
        TrafficFlow("C0", "C3", 300, 10),
        TrafficFlow("C1", "C4", 200, 10),
        TrafficFlow("C2", "C5", 150, 12),
    ])
    tool = SunFloor3D(
        core_spec, comm_spec,
        config=SynthesisConfig(max_ill=10, switch_count_range=(2, 4)),
    )
    return tool, tool.synthesize()


class TestResultReport:
    def test_contains_tradeoff_table(self, synth):
        tool, result = synth
        text = render_result_markdown(result, tool.graph)
        assert "## Trade-off points" in text
        assert "| switches | phase |" in text
        # One row per point.
        assert text.count("| phase1 |") >= len(result.points)

    def test_contains_best_point_details(self, synth):
        tool, result = synth
        text = render_result_markdown(result, tool.graph)
        assert "## Chosen design point" in text
        assert "## Switches" in text
        assert "## Floorplan" in text
        assert "legend:" in text

    def test_empty_result(self):
        text = render_result_markdown(SynthesisResult(unmet_switch_counts=[1, 2]))
        assert "No valid design points" in text
        assert "[1, 2]" in text

    def test_save(self, synth, tmp_path):
        tool, result = synth
        path = tmp_path / "report.md"
        save_report(result, path, tool.graph, title="My SoC")
        text = path.read_text()
        assert text.startswith("# My SoC")


class TestPointReport:
    def test_latency_slack_table(self, synth):
        tool, result = synth
        text = render_point_markdown(result.best_power(), tool.graph)
        assert "## Latency slack per flow" in text
        assert "C0 → C3" in text
        # All slacks non-negative: constraints were met.
        for line in text.splitlines():
            if "→" in line and line.startswith("|"):
                slack = float(line.rstrip(" |").rsplit("|", 1)[-1])
                assert slack >= -1e-9

    def test_without_graph_uses_indices(self, synth):
        _, result = synth
        text = render_point_markdown(result.best_power())
        assert "core0" in text
        assert "Latency slack" not in text

    def test_power_breakdown_present(self, synth):
        tool, result = synth
        best = result.best_power()
        text = render_point_markdown(best, tool.graph)
        assert f"{best.metrics.total_power_mw:.1f} mW" in text
