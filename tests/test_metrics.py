"""NoC metrics evaluation (repro.noc.metrics)."""

import pytest

from repro.models.library import default_library
from repro.noc.metrics import (
    compute_metrics,
    flow_latency_cycles,
    link_lengths_from_positions,
)
from repro.noc.topology import Topology


@pytest.fixture
def routed():
    """Two cores on different layers, one switch each, one flow."""
    topo = Topology(frequency_mhz=400.0, width_bits=32)
    s0 = topo.add_switch(0)
    s1 = topo.add_switch(1)
    s0.x, s0.y = 1.0, 1.0
    s1.x, s1.y = 2.0, 1.0
    topo.attach_core(0, 0, 0)
    topo.attach_core(1, 1, 1)
    link = topo.add_switch_link(0, 1)
    inj, ej = topo.injection_link(0), topo.ejection_link(1)
    topo.record_route((0, 1), [inj.id, link.id, ej.id], [0, 1], 400.0)
    centers = {0: (0.5, 1.0), 1: (2.5, 1.0)}
    return topo, centers


class TestLinkLengths:
    def test_lengths_from_positions(self, routed):
        topo, centers = routed
        link_lengths_from_positions(topo, centers)
        inj = topo.injection_link(0)
        assert inj.length_mm == pytest.approx(0.5)
        sw_link = [l for l in topo.links if not l.is_core_link][0]
        assert sw_link.length_mm == pytest.approx(1.0)

    def test_missing_core_position_raises(self, routed):
        topo, _ = routed
        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError):
            link_lengths_from_positions(topo, {})


class TestLatency:
    def test_zero_load_latency_counts_switches(self, routed):
        topo, centers = routed
        link_lengths_from_positions(topo, centers)
        lib = default_library()
        # Short links (single stage) contribute nothing: 2 switches = 2 cyc.
        assert flow_latency_cycles(topo, (0, 1), lib) == pytest.approx(2.0)

    def test_long_link_adds_pipeline_cycles(self, routed):
        topo, centers = routed
        link_lengths_from_positions(topo, centers)
        lib = default_library()
        sw_link = [l for l in topo.links if not l.is_core_link][0]
        sw_link.length_mm = 6.0  # 3 stages at 400 MHz -> +2 cycles
        assert flow_latency_cycles(topo, (0, 1), lib) == pytest.approx(4.0)

    def test_unknown_flow_raises(self, routed):
        topo, _ = routed
        from repro.errors import SynthesisError

        with pytest.raises(SynthesisError):
            flow_latency_cycles(topo, (5, 6), default_library())


class TestComputeMetrics:
    def test_power_breakdown_sums(self, routed):
        topo, centers = routed
        link_lengths_from_positions(topo, centers)
        m = compute_metrics(topo, centers, default_library())
        assert m.total_power_mw == pytest.approx(
            m.switch_power_mw + m.sw2sw_link_power_mw + m.core2sw_link_power_mw
        )
        assert m.link_power_mw == pytest.approx(
            m.sw2sw_link_power_mw + m.core2sw_link_power_mw
        )
        assert m.switch_power_mw > 0
        assert m.core2sw_link_power_mw > 0

    def test_counts(self, routed):
        topo, centers = routed
        link_lengths_from_positions(topo, centers)
        m = compute_metrics(topo, centers, default_library())
        assert m.num_switches == 2
        assert m.num_links == 5  # 2 core pairs * 2 + 1 switch link
        # Both cores attach to same-layer switches; only the inter-switch
        # link crosses a boundary.
        assert m.num_vertical_links == 1
        assert m.max_ill_used == topo.max_ill_used

    def test_latency_stats(self, routed):
        topo, centers = routed
        link_lengths_from_positions(topo, centers)
        m = compute_metrics(topo, centers, default_library())
        assert m.avg_latency_cycles == pytest.approx(2.0)
        assert m.max_latency_cycles == pytest.approx(2.0)
        assert m.per_flow_latency[(0, 1)] == pytest.approx(2.0)

    def test_more_load_more_power(self, routed):
        topo, centers = routed
        link_lengths_from_positions(topo, centers)
        lib = default_library()
        m1 = compute_metrics(topo, centers, lib)
        # Double every load.
        for link in topo.links:
            link.load_mbps *= 2
        topo.flow_bandwidth[(0, 1)] *= 2
        m2 = compute_metrics(topo, centers, lib)
        assert m2.total_power_mw > m1.total_power_mw

    def test_tsv_macro_area_counted(self, routed):
        topo, centers = routed
        link_lengths_from_positions(topo, centers)
        m = compute_metrics(topo, centers, default_library())
        lib = default_library()
        # Only the inter-switch link crosses a boundary: one macro area.
        expected = lib.tsv.macro_area_mm2(32)
        assert m.tsv_macro_area_mm2 == pytest.approx(expected)

    def test_ni_area(self, routed):
        topo, centers = routed
        link_lengths_from_positions(topo, centers)
        m = compute_metrics(topo, centers, default_library())
        assert m.ni_area_mm2 == pytest.approx(2 * default_library().link.ni_area_mm2)


class TestNiPowerAccounting:
    """The one-pass per-core bandwidth accumulation must equal the former
    O(cores x flows) per-core rescan exactly (same additions, same order)."""

    def _old_style_ni_power(self, topo, library):
        from repro.units import flits_per_second

        width = topo.width_bits
        width_factor = width / 32.0
        total = 0.0
        for core in topo.core_to_switch:
            in_bw = sum(
                topo.flow_bandwidth[f] for f in topo.routes if f[1] == core
            )
            out_bw = sum(
                topo.flow_bandwidth[f] for f in topo.routes if f[0] == core
            )
            rate = flits_per_second(in_bw + out_bw, width) * width_factor
            total += rate * library.link.ni_energy_pj * 1e-3
        return total

    def test_matches_old_rescan_exactly(self):
        from _simtopo import contended_topology

        topo = contended_topology()
        centers = {c: (float(c), 0.5) for c in range(4)}
        for sw in topo.switches:
            sw.x, sw.y = 1.0, 0.5
        link_lengths_from_positions(topo, centers)
        lib = default_library()
        m = compute_metrics(topo, centers, lib)

        # Recompute the whole core2sw bucket minus NI power, then add the
        # old-style NI accounting: must land on the same float.
        from repro.units import flits_per_second

        width_factor = topo.width_bits / 32.0
        core2sw_links = 0.0
        for link in topo.links:
            if not link.is_core_link:
                continue
            rate = flits_per_second(link.load_mbps, topo.width_bits) * width_factor
            power = (
                lib.link.static_power_mw(link.length_mm) * width_factor
                + lib.link.traffic_power_mw(link.length_mm, rate)
            )
            if link.is_vertical:
                power += lib.tsv.traffic_power_mw(link.layers_crossed, rate)
                power += lib.tsv.static_mw_per_link * link.layers_crossed * width_factor
            core2sw_links += power
        expected = core2sw_links + self._old_style_ni_power(topo, lib)
        assert m.core2sw_link_power_mw == expected
