"""Parametric synthetic benchmark generator (repro.bench.synthetic)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.synthetic import PATTERNS, synthetic_benchmark
from repro.errors import SpecError
from repro.spec.validate import validate_specs


class TestGenerator:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_all_patterns_produce_valid_benchmarks(self, pattern):
        bench = synthetic_benchmark(
            10, pattern, num_layers=2, seed=1, floorplan_moves=300
        )
        validate_specs(bench.core_spec_3d, bench.comm_spec)
        validate_specs(bench.core_spec_2d, bench.comm_spec)
        assert bench.num_cores == 10
        assert bench.num_flows >= 5

    def test_total_bandwidth_honoured_when_below_port_cap(self):
        bench = synthetic_benchmark(
            8, "random", seed=2, total_bandwidth=2000.0, floorplan_moves=300
        )
        requests = [
            f for f in bench.comm_spec
            if f.message_type.value == "request"
        ]
        assert sum(f.bandwidth for f in requests) == pytest.approx(2000.0, rel=0.01)

    def test_port_cap_prevents_unsatisfiable_hotspots(self):
        bench = synthetic_benchmark(
            8, "bottleneck", seed=0, total_bandwidth=8000.0,
            floorplan_moves=300, max_port_bandwidth=1200.0,
        )
        inbound, outbound = {}, {}
        for f in bench.comm_spec:
            outbound[f.src] = outbound.get(f.src, 0.0) + f.bandwidth
            inbound[f.dst] = inbound.get(f.dst, 0.0) + f.bandwidth
        assert max(inbound.values()) <= 1200.0 + 1.0
        assert max(outbound.values()) <= 1200.0 + 1.0

    def test_responses_added(self):
        bench = synthetic_benchmark(
            8, "pipeline", seed=3, with_responses=True, floorplan_moves=300
        )
        responses = [
            f for f in bench.comm_spec if f.message_type.value == "response"
        ]
        assert len(responses) == bench.num_flows // 2

    def test_latency_range_honoured(self):
        bench = synthetic_benchmark(
            8, "random", seed=4, latency_range=(5.0, 7.0), floorplan_moves=300
        )
        assert all(5.0 <= f.latency <= 7.0 for f in bench.comm_spec)

    def test_deterministic(self):
        a = synthetic_benchmark(8, "distributed", seed=5, floorplan_moves=300)
        b = synthetic_benchmark(8, "distributed", seed=5, floorplan_moves=300)
        assert [(f.src, f.dst, f.bandwidth) for f in a.comm_spec] == [
            (f.src, f.dst, f.bandwidth) for f in b.comm_spec
        ]
        assert [(c.x, c.y, c.layer) for c in a.core_spec_3d] == [
            (c.x, c.y, c.layer) for c in b.core_spec_3d
        ]

    def test_different_seeds_differ(self):
        a = synthetic_benchmark(8, "random", seed=1, floorplan_moves=300)
        b = synthetic_benchmark(8, "random", seed=2, floorplan_moves=300)
        assert [(f.src, f.dst) for f in a.comm_spec] != [
            (f.src, f.dst) for f in b.comm_spec
        ] or [f.bandwidth for f in a.comm_spec] != [
            f.bandwidth for f in b.comm_spec
        ]

    def test_pipeline_structure(self):
        bench = synthetic_benchmark(8, "pipeline", seed=0, floorplan_moves=300)
        chain = {(f"C{i}", f"C{i+1}") for i in range(7)}
        present = {(f.src, f.dst) for f in bench.comm_spec}
        assert chain <= present

    def test_bottleneck_has_shared_hotspot(self):
        bench = synthetic_benchmark(12, "bottleneck", seed=0, floorplan_moves=300)
        fanin = {}
        for f in bench.comm_spec:
            fanin[f.dst] = fanin.get(f.dst, 0) + 1
        assert max(fanin.values()) >= 4  # a shared memory all procs hit

    def test_bad_args(self):
        with pytest.raises(SpecError):
            synthetic_benchmark(3, "random")
        with pytest.raises(SpecError):
            synthetic_benchmark(8, "star")
        with pytest.raises(SpecError):
            synthetic_benchmark(8, "random", total_bandwidth=0.0)
        with pytest.raises(SpecError):
            synthetic_benchmark(8, "random", latency_range=(0.0, 5.0))


class TestSynthesizable:
    @settings(
        max_examples=4, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        pattern=st.sampled_from(PATTERNS),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_generated_designs_synthesize(self, pattern, seed):
        from repro.core.config import SynthesisConfig
        from repro.core.synthesis import synthesize

        bench = synthetic_benchmark(
            8, pattern, num_layers=2, seed=seed,
            total_bandwidth=4000.0, floorplan_moves=200,
        )
        result = synthesize(
            bench.core_spec_3d, bench.comm_spec,
            config=SynthesisConfig(max_ill=15, switch_count_range=(2, 4)),
        )
        assert result.points, "synthetic designs must be synthesizable"
