"""Shared hand-built simulator test topology (importable, not a fixture).

Lives in its own module (rather than conftest.py) because the benchmarks
harness also ships a ``conftest`` module, and a full-tree pytest run puts
both directories on ``sys.path`` — ``from conftest import ...`` would
resolve to whichever loaded first.
"""

from repro.noc.topology import Topology


def contended_topology(shared_length_mm: float = 6.0) -> Topology:
    """4 cores on 2 switches with a shared, pipelined sw0->sw1 link.

    Flows (0,2) and (1,2) also share core 2's ejection link, so wormhole
    back-pressure, multi-flit pipelines and round-robin arbitration are all
    exercised — the simulator test bed.
    """
    topo = Topology(frequency_mhz=400.0, width_bits=32)
    topo.add_switch(0)
    topo.add_switch(0)
    topo.attach_core(0, 0, 0)
    topo.attach_core(1, 0, 0)
    topo.attach_core(2, 1, 0)
    topo.attach_core(3, 1, 0)
    fwd = topo.add_switch_link(0, 1)
    back = topo.add_switch_link(1, 0)
    for link in topo.links:
        link.length_mm = 0.5
    fwd.length_mm = shared_length_mm
    inj = {c: topo.injection_link(c).id for c in range(4)}
    ej = {c: topo.ejection_link(c).id for c in range(4)}
    topo.record_route((0, 2), [inj[0], fwd.id, ej[2]], [0, 1], 400.0)
    topo.record_route((1, 3), [inj[1], fwd.id, ej[3]], [0, 1], 300.0)
    topo.record_route((1, 2), [inj[1], fwd.id, ej[2]], [0, 1], 200.0)
    topo.record_route((3, 0), [inj[3], back.id, ej[0]], [1, 0], 250.0)
    return topo


def cross_contended_topology(shared_length_mm: float = 6.0) -> Topology:
    """:func:`contended_topology` plus a local (3, 2) cross flow.

    The cross flow contends for core 2's ejection link from a *second*
    input buffer, so the shared link's buffer head gets refused (wormhole
    allocation held by the other input) while the link keeps delivering —
    the exact back-pressure pattern under which the pre-fix simulator
    dumped its ready backlog in a single cycle.
    """
    topo = contended_topology(shared_length_mm)
    inj3 = topo.injection_link(3).id
    ej2 = topo.ejection_link(2).id
    topo.record_route((3, 2), [inj3, ej2], [1], 350.0)
    return topo
