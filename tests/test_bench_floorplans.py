"""Benchmark floorplan generation (repro.bench.floorplans)."""

import pytest

pytestmark = pytest.mark.slow

from repro.bench.floorplans import floorplan_2d, floorplan_3d
from repro.graphs.comm_graph import build_comm_graph
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec
from repro.spec.validate import validate_specs


def _specs():
    cores = CoreSpec(cores=[
        Core("P0", 1.2, 1.0, 0, 0, 0),
        Core("P1", 1.0, 1.1, 0, 0, 0),
        Core("M0", 1.6, 1.4, 0, 0, 1),
        Core("M1", 1.5, 1.3, 0, 0, 1),
        Core("A0", 0.8, 0.8, 0, 0, 0),
        Core("A1", 0.9, 0.7, 0, 0, 1),
    ])
    comm = CommSpec(flows=[
        TrafficFlow("P0", "M0", 800, 10),   # vertical partners
        TrafficFlow("P1", "M1", 700, 10),
        TrafficFlow("P0", "A0", 150, 10),   # intra-layer
        TrafficFlow("M0", "A1", 120, 10),
    ])
    return cores, comm


class TestFloorplan2d:
    def test_produces_legal_single_layer(self):
        cores, comm = _specs()
        graph = build_comm_graph(cores, comm)
        flat = floorplan_2d(cores, graph, moves=600)
        assert flat.num_layers == 1
        validate_specs(flat, comm)

    def test_deterministic(self):
        cores, comm = _specs()
        graph = build_comm_graph(cores, comm)
        a = floorplan_2d(cores, graph, seed=1, moves=400)
        b = floorplan_2d(cores, graph, seed=1, moves=400)
        assert [(c.x, c.y) for c in a] == [(c.x, c.y) for c in b]

    def test_reasonable_packing(self):
        cores, comm = _specs()
        graph = build_comm_graph(cores, comm)
        flat = floorplan_2d(cores, graph, moves=1500)
        total = sum(c.area for c in flat)
        w = max(c.x + c.width for c in flat)
        h = max(c.y + c.height for c in flat)
        assert w * h <= 2.5 * total  # at least 40% utilisation


class TestFloorplan3d:
    def test_layers_preserved_and_legal(self):
        cores, comm = _specs()
        graph = build_comm_graph(cores, comm)
        placed = floorplan_3d(cores, graph, moves=600)
        assert placed.num_layers == 2
        validate_specs(placed, comm)
        assert [c.layer for c in placed] == [c.layer for c in cores]

    def test_anchors_align_vertical_partners(self):
        """Cores communicating across layers end up roughly stacked."""
        cores, comm = _specs()
        graph = build_comm_graph(cores, comm)
        placed = floorplan_3d(cores, graph, moves=2500, anchor_weight=3.0)
        p0 = placed.by_name("P0").center
        m0 = placed.by_name("M0").center
        dist = abs(p0[0] - m0[0]) + abs(p0[1] - m0[1])
        # Within a couple of core pitches, not across the die.
        assert dist < 3.0

    def test_deterministic(self):
        cores, comm = _specs()
        graph = build_comm_graph(cores, comm)
        a = floorplan_3d(cores, graph, seed=4, moves=400)
        b = floorplan_3d(cores, graph, seed=4, moves=400)
        assert [(c.x, c.y) for c in a] == [(c.x, c.y) for c in b]

    def test_layer_seeds_decorrelated(self):
        """Different layers use different annealing streams: their packings
        are not forced into identical shapes."""
        cores, comm = _specs()
        graph = build_comm_graph(cores, comm)
        placed = floorplan_3d(cores, graph, seed=0, moves=400)
        layer0 = [(c.x, c.y) for c in placed.cores_in_layer(0)]
        layer1 = [(c.x, c.y) for c in placed.cores_in_layer(1)]
        assert len(layer0) == len(layer1) == 3
