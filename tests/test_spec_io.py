"""Spec file round-trips (repro.spec.io)."""

import pytest

from repro.errors import SpecError
from repro.spec.comm_spec import CommSpec, MessageType, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec
from repro.spec.io import (
    load_comm_spec_json,
    load_comm_spec_text,
    load_core_spec_json,
    load_core_spec_text,
    save_comm_spec_json,
    save_comm_spec_text,
    save_core_spec_json,
    save_core_spec_text,
)


@pytest.fixture
def core_spec():
    return CoreSpec(cores=[
        Core("ARM", 1.5, 1.25, 0.0, 0.0, 0),
        Core("MEM0", 2.0, 1.0, 2.0, 0.0, 1),
    ])


@pytest.fixture
def comm_spec():
    return CommSpec(flows=[
        TrafficFlow("ARM", "MEM0", 400.0, 8.0),
        TrafficFlow("MEM0", "ARM", 300.0, 8.0, MessageType.RESPONSE),
    ])


class TestJsonRoundTrip:
    def test_core_spec(self, tmp_path, core_spec):
        path = tmp_path / "cores.json"
        save_core_spec_json(core_spec, path)
        loaded = load_core_spec_json(path)
        assert loaded.names == core_spec.names
        assert loaded[1].layer == 1
        assert loaded[0].width == pytest.approx(1.5)

    def test_comm_spec(self, tmp_path, comm_spec):
        path = tmp_path / "comm.json"
        save_comm_spec_json(comm_spec, path)
        loaded = load_comm_spec_json(path)
        assert len(loaded) == 2
        assert loaded[1].message_type is MessageType.RESPONSE

    def test_missing_key_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"cores": [{"name": "A"}]}')
        with pytest.raises(SpecError):
            load_core_spec_json(path)

    def test_missing_toplevel_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(SpecError):
            load_core_spec_json(path)
        with pytest.raises(SpecError):
            load_comm_spec_json(path)


class TestTextRoundTrip:
    def test_core_spec(self, tmp_path, core_spec):
        path = tmp_path / "cores.txt"
        save_core_spec_text(core_spec, path)
        loaded = load_core_spec_text(path)
        assert loaded.names == ["ARM", "MEM0"]
        assert loaded[0].height == pytest.approx(1.25)

    def test_comm_spec(self, tmp_path, comm_spec):
        path = tmp_path / "comm.txt"
        save_comm_spec_text(comm_spec, path)
        loaded = load_comm_spec_text(path)
        assert loaded[0].bandwidth == pytest.approx(400.0)
        assert loaded[1].message_type is MessageType.RESPONSE

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "cores.txt"
        path.write_text("# comment\n\ncore A 1 1 0 0 0  # trailing\n")
        loaded = load_core_spec_text(path)
        assert loaded.names == ["A"]

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "cores.txt"
        path.write_text("core A 1 1 0 0\n")  # missing layer
        with pytest.raises(SpecError, match=":1"):
            load_core_spec_text(path)

    def test_flow_default_message_type(self, tmp_path):
        path = tmp_path / "comm.txt"
        path.write_text("flow A B 100 8\n")
        loaded = load_comm_spec_text(path)
        assert loaded[0].message_type is MessageType.REQUEST
