"""Library bundle (repro.models.library) and cross-model consistency."""

import pytest

from repro.models.library import NocLibrary, default_library
from repro.units import link_capacity_mbps


class TestNocLibrary:
    def test_default_library_has_all_models(self):
        lib = default_library()
        assert lib.switch.f_max(4) > 0
        assert lib.link.energy_per_flit_pj(1.0) > 0
        assert lib.tsv.macro_area_mm2(32) > 0

    def test_with_switch_returns_modified_copy(self):
        lib = default_library()
        fast = lib.with_switch(fmax_intercept_mhz=2000.0)
        assert fast.switch.fmax_intercept_mhz == 2000.0
        assert lib.switch.fmax_intercept_mhz != 2000.0
        assert fast.link is lib.link

    def test_with_link_and_tsv(self):
        lib = default_library()
        heavy = lib.with_link(e_planar_pj_per_mm=9.0).with_tsv(control_tsvs=4)
        assert heavy.link.e_planar_pj_per_mm == 9.0
        assert heavy.tsv.control_tsvs == 4

    def test_frozen(self):
        lib = default_library()
        with pytest.raises(Exception):
            lib.name = "other"


class TestCrossModelConsistency:
    """Relations between models the paper's argument relies on."""

    def test_vertical_hop_cheaper_than_average_planar_hop(self):
        # The 3-D advantage: one layer crossing costs less than ~0.5 mm of
        # planar wire.
        lib = default_library()
        assert lib.tsv.e_tsv_pj_per_layer < lib.link.energy_per_flit_pj(0.5)

    def test_switch_hop_costs_more_than_short_wire(self):
        # There is a real trade-off between extra hops and longer wires:
        # one switch traversal costs about as much as a fraction of a mm.
        lib = default_library()
        e_switch = lib.switch.energy_per_flit_pj(6)
        assert lib.link.energy_per_flit_pj(0.1) < e_switch < lib.link.energy_per_flit_pj(3.0)

    def test_capacity_consistent_with_frequency(self):
        assert link_capacity_mbps(32, 400.0) == pytest.approx(1600.0)

    def test_max_switch_size_at_paper_frequencies(self):
        # 400 MHz admits mid-sized switches; 850+ MHz only tiny ones.
        lib = default_library()
        assert lib.switch.max_switch_size(400.0) >= 8
        assert lib.switch.max_switch_size(850.0) <= 3

    def test_tsv_macro_far_smaller_than_cores(self):
        # "Area reservation" must not dominate the floorplan: a 32-bit macro
        # is well below 0.01 mm^2 vs ~1 mm^2 cores.
        lib = default_library()
        assert lib.tsv.macro_area_mm2(32) < 0.01

    def test_noc_components_thermally_negligible(self):
        # Sec. I: "a single switch or interface of a NoC has low area ...
        # and power consumption ... thermal properties not affected
        # significantly".
        lib = default_library()
        assert lib.switch.area_mm2(8) + lib.link.ni_area_mm2 < 0.1
