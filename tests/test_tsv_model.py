"""TSV model and yield curves (repro.models.tsv_model)."""

import pytest
from hypothesis import given, strategies as st

from repro.models.tsv_model import (
    DEFAULT_PROCESSES,
    TsvModel,
    TsvProcess,
    max_tsvs_for_yield,
    yield_for_tsv_count,
)


@pytest.fixture
def model():
    return TsvModel()


class TestYieldCurves:
    def test_flat_up_to_knee(self):
        p = DEFAULT_PROCESSES["wafer-level-b"]
        assert p.yield_at(0) == p.base_yield
        assert p.yield_at(p.knee_tsvs) == p.base_yield

    def test_decays_beyond_knee(self):
        p = DEFAULT_PROCESSES["wafer-level-b"]
        y1 = p.yield_at(p.knee_tsvs + 100)
        y2 = p.yield_at(p.knee_tsvs + 500)
        assert p.base_yield > y1 > y2 > 0

    def test_processes_ordered_like_fig1(self):
        # Better processes sustain more TSVs at any yield target.
        a = max_tsvs_for_yield("wafer-level-a", 0.5)
        b = max_tsvs_for_yield("wafer-level-b", 0.5)
        c = max_tsvs_for_yield("die-to-wafer", 0.5)
        assert a > b > c

    def test_max_tsvs_inverts_yield(self):
        p = DEFAULT_PROCESSES["die-to-wafer"]
        target = 0.5
        n = p.max_tsvs(target)
        assert p.yield_at(n) >= target
        assert p.yield_at(n + 2) < target + 1e-6

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PROCESSES["die-to-wafer"].max_tsvs(0.99)

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PROCESSES["die-to-wafer"].max_tsvs(0.0)

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError):
            yield_for_tsv_count("bogus", 100)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PROCESSES["wafer-level-a"].yield_at(-1)


class TestTsvGeometry:
    def test_tsvs_per_link_includes_control(self, model):
        assert model.tsvs_per_link(32) == 32 + model.control_tsvs

    def test_macro_area_matches_pitch(self, model):
        # 40 TSVs at 8 um pitch: 40 * 0.008^2 mm^2.
        assert model.macro_area_mm2(32) == pytest.approx(40 * 0.008 * 0.008)

    def test_macro_area_scales_with_width(self, model):
        assert model.macro_area_mm2(64) > model.macro_area_mm2(32)

    def test_rejects_bad_width(self, model):
        with pytest.raises(ValueError):
            model.tsvs_per_link(0)


class TestTsvElectrical:
    def test_energy_linear_in_layers(self, model):
        assert model.energy_per_flit_pj(3) == pytest.approx(
            3 * model.energy_per_flit_pj(1)
        )

    def test_vertical_crossing_order_of_magnitude_cheaper_than_planar(self, model):
        # Paper Sec. VIII: TSVs have ~10x lower RC than a 1.5 mm planar link.
        from repro.models.link_model import LinkModel

        planar = LinkModel().energy_per_flit_pj(1.5)
        assert model.energy_per_flit_pj(1) < planar / 5

    def test_delay_negligible_at_noc_frequencies(self, model):
        # 17 ps/layer against a 2.5 ns cycle: zero extra cycles.
        assert model.delay_cycles(3, 400.0) == 0

    def test_delay_counts_for_absurd_stacks(self, model):
        assert model.delay_cycles(200, 1000.0) >= 3

    def test_rejects_negative(self, model):
        with pytest.raises(ValueError):
            model.energy_per_flit_pj(-1)
        with pytest.raises(ValueError):
            model.delay_cycles(-1, 400.0)


class TestRedundancy:
    """Spare TSVs for fault tolerance (Sec. III, after [40])."""

    def test_redundancy_scales_tsv_count(self):
        base = TsvModel()
        spare = TsvModel(redundancy=1.25)
        assert spare.tsvs_per_link(32) == 50  # ceil(40 * 1.25)
        assert spare.tsvs_per_link(32) > base.tsvs_per_link(32)

    def test_redundancy_scales_macro_area(self):
        base = TsvModel()
        spare = TsvModel(redundancy=1.5)
        assert spare.macro_area_mm2(32) > base.macro_area_mm2(32)

    def test_redundancy_reduces_max_ill_for_budget(self):
        base = TsvModel()
        spare = TsvModel(redundancy=1.5)
        budget = 1000
        assert spare.max_ill_for_budget(budget, 32) < base.max_ill_for_budget(budget, 32)

    def test_no_spares_is_identity(self):
        assert TsvModel(redundancy=1.0).tsvs_per_link(32) == 40

    def test_invalid_redundancy_rejected(self):
        with pytest.raises(ValueError):
            TsvModel(redundancy=0.5)


class TestMaxIllDerivation:
    def test_budget_divides_by_link_cost(self, model):
        per_link = model.tsvs_per_link(32)
        assert model.max_ill_for_budget(per_link * 25, 32) == 25
        assert model.max_ill_for_budget(per_link * 25 + 10, 32) == 25

    def test_zero_budget(self, model):
        assert model.max_ill_for_budget(0, 32) == 0

    def test_rejects_negative_budget(self, model):
        with pytest.raises(ValueError):
            model.max_ill_for_budget(-1, 32)


class TestProperties:
    @given(
        knee=st.integers(min_value=10, max_value=2000),
        decay=st.floats(min_value=10.0, max_value=2000.0),
        count=st.integers(min_value=0, max_value=10_000),
    )
    def test_yield_monotone_nonincreasing(self, knee, decay, count):
        p = TsvProcess("t", base_yield=0.9, knee_tsvs=knee, decay_tsvs=decay)
        assert p.yield_at(count) >= p.yield_at(count + 100) - 1e-12
