"""Micro-benchmark regression for the compute_paths hot-path overhaul.

Keeps a naive reference implementation of the Algorithm 3 routing loop *in
the test* — a Dijkstra that re-evaluates the full edge cost on every
relaxation via the plain :func:`repro.core.paths._edge_cost`, with the
copy-based legacy CDG — and asserts the optimised
:func:`repro.core.paths.compute_paths` produces identical routes, loads and
port counts on the D_26-style synthetic graph, across flow-count scaling
steps. Timings are printed (visible with ``-s``); the hard >= 1.3x speedup
gate lives in ``benchmarks/bench_engine_scaling.py`` where timing noise is
controlled.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Set, Tuple

import pytest

from repro.bench.synthetic import synthetic_benchmark
from repro.core.config import SynthesisConfig
from repro.core.paths import (
    INF,
    _edge_cost,
    _estimate_latency,
    _make_cost_model,
    _pick_ban_edge,
    _try_add_indirect_switch,
    build_topology_skeleton,
    compute_paths,
)
from repro.errors import PathComputationError
from repro.graphs.comm_graph import build_comm_graph
from repro.models.library import default_library
from repro.noc.export import topology_to_dict
from repro.noc.topology import switch_ep
from repro.units import flits_per_second


# --------------------------------------------------------------------------
# Naive reference: the pre-optimisation routing loop, kept here verbatim.
# --------------------------------------------------------------------------

class _NaiveCDG:
    def __init__(self):
        self._succ = {}

    @staticmethod
    def _path_edges(link_ids):
        return [(a, b) for a, b in zip(link_ids, link_ids[1:])]

    def add_path(self, link_ids, message_class):
        adj = self._succ.setdefault(message_class, {})
        for u, v in self._path_edges(link_ids):
            adj.setdefault(u, set()).add(v)

    def creates_cycle(self, link_ids, message_class):
        new_edges = self._path_edges(link_ids)
        if not new_edges:
            return False
        adj = self._succ.get(message_class, {})
        combined = {u: set(vs) for u, vs in adj.items()}
        for u, v in new_edges:
            combined.setdefault(u, set()).add(v)
        color: Dict[int, int] = {}
        for start in sorted({u for u, _ in new_edges}):
            if color.get(start, 0):
                continue
            stack = [(start, iter(sorted(combined.get(start, ()))))]
            color[start] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    state = color.get(nxt, 0)
                    if state == 1:
                        return True
                    if state == 0:
                        color[nxt] = 1
                        stack.append((nxt, iter(sorted(combined.get(nxt, ())))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = 2
                    stack.pop()
        return False


def _naive_dijkstra(
    topology, library, config, model, src_sw, dst_sw, bandwidth, rate,
    banned, min_hop=False,
) -> Optional[List[int]]:
    n = len(topology.switches)
    dist = {src_sw: 0.0}
    prev: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(0.0, src_sw)]
    done: Set[int] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in done:
            continue
        if u == dst_sw:
            break
        done.add(u)
        for v in range(n):
            if v == u or v in done or (u, v) in banned:
                continue
            cost, _ = _edge_cost(
                topology, library, config, model, u, v, bandwidth, rate
            )
            if cost == INF:
                continue
            step = (1.0 + cost * 1e-9) if min_hop else cost
            nd = d + step
            if nd < dist.get(v, INF):
                dist[v] = nd
                prev[v] = u
                heapq.heappush(heap, (nd, v))
    if dst_sw not in dist:
        return None
    path = [dst_sw]
    while path[-1] != src_sw:
        path.append(prev[path[-1]])
    path.reverse()
    return path


def _naive_route_flow(
    topology, graph, library, config, model, cdg, src, dst, flow, centers
) -> bool:
    src_sw = topology.core_to_switch[src]
    dst_sw = topology.core_to_switch[dst]
    bandwidth = flow.bandwidth
    rate = flits_per_second(bandwidth, topology.width_bits)
    inj = topology.injection_link(src)
    ej = topology.ejection_link(dst)
    if inj.load_mbps + bandwidth > model.capacity + 1e-9:
        return False
    if ej.load_mbps + bandwidth > model.capacity + 1e-9:
        return False
    banned: Set[Tuple[int, int]] = set()
    for _ in range(max(1, config.deadlock_retries)):
        if src_sw == dst_sw:
            path_switches: Optional[List[int]] = [src_sw]
        else:
            path_switches = _naive_dijkstra(
                topology, library, config, model, src_sw, dst_sw,
                bandwidth, rate, banned,
            )
        if path_switches is None:
            return False
        if (
            _estimate_latency(topology, library, path_switches, src, dst, centers)
            > flow.latency + 1e-9
        ):
            alt = (
                _naive_dijkstra(
                    topology, library, config, model, src_sw, dst_sw,
                    bandwidth, rate, banned, min_hop=True,
                )
                if src_sw != dst_sw
                else [src_sw]
            )
            if alt is None:
                return False
            if (
                _estimate_latency(topology, library, alt, src, dst, centers)
                > flow.latency + 1e-9
            ):
                return False
            path_switches = alt
        plan = []
        tentative_ids = [inj.id]
        next_fake = -1
        for u, v in zip(path_switches, path_switches[1:]):
            chosen = None
            for link in topology.links_between(switch_ep(u), switch_ep(v)):
                if link.load_mbps + bandwidth <= model.capacity + 1e-9:
                    if chosen is None or link.load_mbps < chosen.load_mbps:
                        chosen = link
            if chosen is not None:
                plan.append((u, v, chosen.id))
                tentative_ids.append(chosen.id)
            else:
                plan.append((u, v, None))
                tentative_ids.append(next_fake)
                next_fake -= 1
        tentative_ids.append(ej.id)
        if cdg.creates_cycle(tentative_ids, flow.message_type):
            edge_to_ban = _pick_ban_edge(path_switches, banned)
            if edge_to_ban is None:
                return False
            banned.add(edge_to_ban)
            continue
        real_ids = [inj.id]
        for u, v, link_id in plan:
            if link_id is None:
                real_ids.append(topology.add_switch_link(u, v).id)
            else:
                real_ids.append(link_id)
        real_ids.append(ej.id)
        topology.record_route((src, dst), real_ids, list(path_switches), bandwidth)
        cdg.add_path(real_ids, flow.message_type)
        return True
    return False


def naive_compute_paths(topology, graph, library, config, centers) -> None:
    model = _make_cost_model(topology, graph, library, config)
    cdg = _NaiveCDG()
    if config.flow_order == "bandwidth_desc":
        flows = sorted(graph.edges.items(), key=lambda kv: (-kv[1].bandwidth, kv[0]))
    elif config.flow_order == "bandwidth_asc":
        flows = sorted(graph.edges.items(), key=lambda kv: (kv[1].bandwidth, kv[0]))
    else:
        flows = sorted(graph.edges.items(), key=lambda kv: kv[0])
    indirect_layers: Set[int] = set()
    for (src, dst), flow in flows:
        if flow.bandwidth > model.capacity:
            raise PathComputationError("flow above capacity")
        routed = _naive_route_flow(
            topology, graph, library, config, model, cdg, src, dst, flow, centers
        )
        while not routed:
            if not _try_add_indirect_switch(
                topology, config, library, src, dst, indirect_layers
            ):
                raise PathComputationError("unroutable flow")
            routed = _naive_route_flow(
                topology, graph, library, config, model, cdg,
                src, dst, flow, centers,
            )
    topology.validate_routes()
    over = topology.check_capacity(config.utilisation_cap)
    if over:
        raise PathComputationError(f"links over capacity: {over}")


# --------------------------------------------------------------------------
# the tests
# --------------------------------------------------------------------------

def _route_candidates(bench, config, router):
    """Route switch-count candidates 3..8; returns serialized topologies."""
    from repro.core.phase1 import phase1_candidate

    library = default_library()
    graph = build_comm_graph(bench.core_spec_3d, bench.comm_spec)
    centers = {
        i: core.center for i, core in enumerate(bench.core_spec_3d)
    }
    out = []
    elapsed = 0.0
    for count in range(3, 9):
        assignment = phase1_candidate(graph, config, count)
        try:
            topo = build_topology_skeleton(
                assignment, graph, library, config, centers
            )
            start = time.perf_counter()
            router(topo, graph, library, config, centers)
            elapsed += time.perf_counter() - start
            out.append(topology_to_dict(topo))
        except PathComputationError:
            out.append(None)
    return out, elapsed


@pytest.mark.parametrize("num_cores", (12, 18, 26))
def test_optimized_routes_identical_to_naive(num_cores):
    """Flow-count scaling on the D_26-style synthetic graph: the optimised
    hot path must return byte-identical topologies at every size."""
    bench = synthetic_benchmark(
        num_cores, "distributed", num_layers=3, seed=3, floorplan_moves=200
    )
    config = SynthesisConfig(max_ill=16)
    optimized, t_opt = _route_candidates(bench, config, compute_paths)
    naive, t_naive = _route_candidates(bench, config, naive_compute_paths)
    assert optimized == naive
    assert any(t is not None for t in optimized)
    print(
        f"\n{num_cores} cores: naive {t_naive * 1e3:.1f}ms, "
        f"optimized {t_opt * 1e3:.1f}ms "
        f"({t_naive / t_opt if t_opt else float('inf'):.2f}x)"
    )


def test_frozen_reference_matches_in_test_reference():
    """The benchmark's frozen baseline (repro.engine.reference) must stay in
    lockstep with the reference kept in this test."""
    from repro.engine.reference import naive_compute_paths as frozen

    bench = synthetic_benchmark(
        14, "bottleneck", num_layers=3, seed=9, floorplan_moves=200
    )
    config = SynthesisConfig(max_ill=12)
    ours, _ = _route_candidates(bench, config, naive_compute_paths)
    theirs, _ = _route_candidates(bench, config, frozen)
    assert ours == theirs


def test_optimized_handles_indirect_switch_insertion_identically():
    """A saturating design forces indirect switches: the context cache must
    pick up switches added mid-routing."""
    bench = synthetic_benchmark(
        16, "bottleneck", num_layers=2, seed=2, floorplan_moves=200
    )
    # Tight switch size via high frequency: pushes port saturation.
    config = SynthesisConfig(frequency_mhz=700.0, max_ill=8)
    optimized, _ = _route_candidates(bench, config, compute_paths)
    naive, _ = _route_candidates(bench, config, naive_compute_paths)
    assert optimized == naive
