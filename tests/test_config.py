"""Synthesis configuration validation (repro.core.config)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.errors import SpecError


class TestValidation:
    def test_defaults_valid(self):
        cfg = SynthesisConfig()
        assert cfg.frequency_mhz == 400.0
        assert cfg.max_ill == 25

    @pytest.mark.parametrize("kwargs", [
        {"frequency_mhz": 0.0},
        {"link_width_bits": 0},
        {"alpha": 1.5},
        {"alpha": -0.1},
        {"objective": "area"},
        {"max_ill": -1},
        {"phase": "phase3"},
        {"switch_layer_mode": "median"},
        {"theta_min": 0.0},
        {"theta_step": 0.0},
        {"theta_min": 10.0, "theta_max": 5.0},
        {"utilisation_cap": 0.0},
        {"utilisation_cap": 1.5},
        {"switch_count_range": (0, 5)},
        {"switch_count_range": (5, 3)},
        {"floorplanner": "parquet"},
        {"floorplan_restarts": 0},
        {"floorplan_jobs": -1},
        # Multi-start knobs require the annealed baseline — the custom
        # inserter is deterministic and would silently ignore them.
        {"floorplan_restarts": 2},
        {"floorplanner": "custom", "floorplan_jobs": 4},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(SpecError):
            SynthesisConfig(**kwargs)

    def test_floorplan_multistart_requires_constrained(self):
        cfg = SynthesisConfig(
            floorplanner="constrained", floorplan_restarts=4, floorplan_jobs=2
        )
        assert cfg.floorplan_restarts == 4
        assert cfg.floorplan_jobs == 2


class TestHelpers:
    def test_with_creates_modified_copy(self):
        cfg = SynthesisConfig()
        other = cfg.with_(max_ill=10)
        assert other.max_ill == 10
        assert cfg.max_ill == 25

    def test_theta_values_sweep(self):
        cfg = SynthesisConfig(theta_min=1.0, theta_max=15.0, theta_step=3.0)
        assert list(cfg.theta_values()) == [1.0, 4.0, 7.0, 10.0, 13.0]

    def test_theta_values_inclusive_endpoint(self):
        cfg = SynthesisConfig(theta_min=1.0, theta_max=7.0, theta_step=3.0)
        assert list(cfg.theta_values()) == [1.0, 4.0, 7.0]

    def test_hashable_for_caching(self):
        a = SynthesisConfig(switch_count_range=(3, 12))
        b = SynthesisConfig(switch_count_range=(3, 12))
        assert hash(a) == hash(b)
        assert a == b
