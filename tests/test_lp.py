"""LP modelling layer and both backends (repro.lp)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InfeasibleLPError, LPError, UnboundedLPError
from repro.lp.model import LinearProgram
from repro.lp.simplex import solve_simplex

BACKENDS = ("scipy", "simplex")


class TestModel:
    def test_variable_bounds_validated(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.add_variable("x", low=2.0, high=1.0)

    def test_unknown_sense_rejected(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        with pytest.raises(LPError):
            lp.add_constraint({x: 1.0}, "<", 1.0)

    def test_foreign_variable_rejected(self):
        lp1, lp2 = LinearProgram(), LinearProgram()
        x1 = lp1.add_variable("x")
        lp2.add_variable("y")
        with pytest.raises(LPError):
            lp2.add_constraint({x1: 1.0}, "<=", 1.0)

    def test_counts(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.add_constraint({x: 1.0}, "<=", 4.0)
        assert lp.num_variables == 1
        assert lp.num_constraints == 1

    def test_unknown_backend(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.solve(backend="cplex")


@pytest.mark.parametrize("backend", BACKENDS)
class TestSolve:
    def test_simple_minimisation(self, backend):
        # min x + y  s.t. x + y >= 2, x >= 0, y >= 0 -> objective 2.
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.add_constraint({x: 1.0, y: 1.0}, ">=", 2.0)
        lp.set_objective({x: 1.0, y: 1.0})
        sol = lp.solve(backend=backend)
        assert sol.objective == pytest.approx(2.0)

    def test_equality_constraint(self, backend):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.add_constraint({x: 1.0, y: 2.0}, "==", 4.0)
        lp.set_objective({x: 3.0, y: 1.0})
        sol = lp.solve(backend=backend)
        # Cheapest: all weight on y: y = 2, objective 2.
        assert sol.objective == pytest.approx(2.0)
        assert sol.value(y) == pytest.approx(2.0)

    def test_upper_bounds(self, backend):
        # max x (== min -x) with x <= 7 via bound.
        lp = LinearProgram()
        x = lp.add_variable("x", low=0.0, high=7.0)
        lp.set_objective({x: -1.0})
        sol = lp.solve(backend=backend)
        assert sol.value(x) == pytest.approx(7.0)

    def test_free_variable(self, backend):
        # min |x - (-3)| linearised: d >= x+3, d >= -x-3, x free.
        lp = LinearProgram()
        x = lp.add_variable("x", low=None)
        d = lp.add_variable("d")
        lp.add_constraint({d: 1.0, x: -1.0}, ">=", 3.0)
        lp.add_constraint({d: 1.0, x: 1.0}, ">=", -3.0)
        lp.set_objective({d: 1.0})
        sol = lp.solve(backend=backend)
        assert sol.objective == pytest.approx(0.0, abs=1e-6)
        assert sol.value(x) == pytest.approx(-3.0, abs=1e-6)

    def test_shifted_lower_bound(self, backend):
        lp = LinearProgram()
        x = lp.add_variable("x", low=5.0)
        lp.set_objective({x: 1.0})
        sol = lp.solve(backend=backend)
        assert sol.value(x) == pytest.approx(5.0)

    def test_infeasible_detected(self, backend):
        lp = LinearProgram()
        x = lp.add_variable("x", low=0.0, high=1.0)
        lp.add_constraint({x: 1.0}, ">=", 5.0)
        lp.set_objective({x: 1.0})
        with pytest.raises(InfeasibleLPError):
            lp.solve(backend=backend)

    def test_unbounded_detected(self, backend):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.set_objective({x: -1.0})
        with pytest.raises(UnboundedLPError):
            lp.solve(backend=backend)

    def test_manhattan_median(self, backend):
        # min sum |x - a_i| over a = (0, 4, 10): optimum at the median (4).
        lp = LinearProgram()
        x = lp.add_variable("x")
        total = {}
        for i, a in enumerate((0.0, 4.0, 10.0)):
            d = lp.add_variable(f"d{i}")
            lp.add_constraint({d: 1.0, x: -1.0}, ">=", -a)
            lp.add_constraint({d: 1.0, x: 1.0}, ">=", a)
            total[d] = 1.0
        lp.set_objective(total)
        sol = lp.solve(backend=backend)
        assert sol.value(x) == pytest.approx(4.0, abs=1e-6)
        assert sol.objective == pytest.approx(10.0, abs=1e-6)


class TestSimplexDirect:
    def test_empty_program_feasible(self):
        result = solve_simplex([1.0, 2.0], [])
        assert result.objective == 0.0

    def test_empty_program_unbounded(self):
        with pytest.raises(UnboundedLPError):
            solve_simplex([-1.0], [])

    def test_row_length_mismatch(self):
        with pytest.raises(LPError):
            solve_simplex([1.0, 1.0], [([1.0], "<=", 1.0)])

    def test_negative_rhs_normalised(self):
        # -x <= -2  <=>  x >= 2.
        result = solve_simplex([1.0], [([-1.0], "<=", -2.0)])
        assert result.objective == pytest.approx(2.0)

    def test_degenerate_redundant_equalities(self):
        rows = [
            ([1.0, 1.0], "==", 2.0),
            ([2.0, 2.0], "==", 4.0),  # redundant
        ]
        result = solve_simplex([1.0, 0.0], rows)
        assert result.objective == pytest.approx(0.0, abs=1e-9)


class TestBackendsAgree:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_bounded_lps_match(self, data):
        """Cross-check the hand-rolled simplex against scipy/HiGHS."""
        n = data.draw(st.integers(min_value=1, max_value=4))
        m = data.draw(st.integers(min_value=1, max_value=4))
        lp_a, lp_b = LinearProgram(), LinearProgram()
        vars_a = [lp_a.add_variable(f"x{i}", low=0.0, high=10.0) for i in range(n)]
        vars_b = [lp_b.add_variable(f"x{i}", low=0.0, high=10.0) for i in range(n)]
        coeff = st.integers(min_value=-3, max_value=3)
        for _ in range(m):
            row = [data.draw(coeff) for _ in range(n)]
            rhs = data.draw(st.integers(min_value=0, max_value=20))
            for lp, vs in ((lp_a, vars_a), (lp_b, vars_b)):
                lp.add_constraint(
                    {v: c for v, c in zip(vs, row)}, "<=", float(rhs)
                )
        obj = [data.draw(st.integers(min_value=0, max_value=3)) for _ in range(n)]
        lp_a.set_objective({v: c for v, c in zip(vars_a, obj)})
        lp_b.set_objective({v: c for v, c in zip(vars_b, obj)})
        sol_a = lp_a.solve(backend="scipy")
        sol_b = lp_b.solve(backend="simplex")
        assert sol_a.objective == pytest.approx(sol_b.objective, abs=1e-6)
