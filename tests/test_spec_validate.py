"""Cross-spec validation (repro.spec.validate)."""

import pytest

from repro.errors import SpecError
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec
from repro.spec.validate import validate_specs


def _cores(*entries):
    return CoreSpec(cores=[Core(*e) for e in entries])


def _flows(*triples):
    return CommSpec(flows=[TrafficFlow(s, d, bw, 8.0) for s, d, bw in triples])


class TestValidateSpecs:
    def test_valid_pair_passes(self):
        cores = _cores(("A", 1, 1, 0, 0, 0), ("B", 1, 1, 2, 0, 0))
        validate_specs(cores, _flows(("A", "B", 100)))

    def test_empty_core_spec_rejected(self):
        with pytest.raises(SpecError, match="core"):
            validate_specs(CoreSpec(), _flows(("A", "B", 100)))

    def test_empty_comm_spec_rejected(self):
        cores = _cores(("A", 1, 1, 0, 0, 0))
        with pytest.raises(SpecError, match="communication"):
            validate_specs(cores, CommSpec())

    def test_unknown_flow_endpoint_rejected(self):
        cores = _cores(("A", 1, 1, 0, 0, 0), ("B", 1, 1, 2, 0, 0))
        with pytest.raises(SpecError, match="Z"):
            validate_specs(cores, _flows(("A", "Z", 100)))
        with pytest.raises(SpecError, match="Z"):
            validate_specs(cores, _flows(("Z", "B", 100)))

    def test_non_contiguous_layers_rejected(self):
        cores = _cores(("A", 1, 1, 0, 0, 0), ("B", 1, 1, 2, 0, 2))
        with pytest.raises(SpecError, match="contiguous"):
            validate_specs(cores, _flows(("A", "B", 100)))

    def test_overlapping_cores_rejected(self):
        cores = _cores(("A", 2, 2, 0, 0, 0), ("B", 2, 2, 1, 1, 0))
        with pytest.raises(SpecError, match="overlap"):
            validate_specs(cores, _flows(("A", "B", 100)))

    def test_abutting_cores_allowed(self):
        cores = _cores(("A", 1, 1, 0, 0, 0), ("B", 1, 1, 1.0, 0, 0))
        validate_specs(cores, _flows(("A", "B", 100)))

    def test_overlap_on_different_layers_allowed(self):
        cores = _cores(("A", 2, 2, 0, 0, 0), ("B", 2, 2, 0, 0, 1))
        validate_specs(cores, _flows(("A", "B", 100)))
