"""Switch power/area/timing model (repro.models.switch_model)."""

import pytest
from hypothesis import given, strategies as st

from repro.models.switch_model import SwitchModel


@pytest.fixture
def model():
    return SwitchModel()


class TestFrequency:
    def test_fmax_decreases_with_ports(self, model):
        assert model.f_max(4) > model.f_max(8) > model.f_max(12)

    def test_fmax_floor(self, model):
        assert model.f_max(100) == model.fmax_floor_mhz

    def test_max_switch_size_consistent_with_fmax(self, model):
        size = model.max_switch_size(400.0)
        assert model.f_max(size) >= 400.0
        assert model.f_max(size + 1) < 400.0

    def test_max_switch_size_at_400mhz_matches_paper_behaviour(self, model):
        # D_26_media at 400 MHz only admits >= 3 switches (Sec. VIII-A):
        # 26 cores on 2 switches would need ~14 ports, above the limit.
        size = model.max_switch_size(400.0)
        assert 26 / 3 + 2 <= size < 26 / 2 + 1

    def test_max_switch_size_rejects_unreachable_frequency(self, model):
        with pytest.raises(ValueError):
            model.max_switch_size(10_000.0)

    def test_max_switch_size_rejects_nonpositive(self, model):
        with pytest.raises(ValueError):
            model.max_switch_size(0.0)


class TestPower:
    def test_power_components_positive(self, model):
        assert model.static_power_mw(5) > 0
        assert model.clock_power_mw(5, 400.0) > 0
        assert model.traffic_power_mw(5, 100.0) > 0

    def test_power_monotone_in_ports(self, model):
        assert model.power_mw(8, 400.0, 100.0) > model.power_mw(4, 400.0, 100.0)

    def test_power_monotone_in_load(self, model):
        assert model.power_mw(5, 400.0, 500.0) > model.power_mw(5, 400.0, 100.0)

    def test_zero_load_power_is_static_plus_clock(self, model):
        total = model.power_mw(5, 400.0, 0.0)
        assert total == pytest.approx(
            model.static_power_mw(5) + model.clock_power_mw(5, 400.0)
        )

    def test_few_mw_at_1ghz(self, model):
        # Paper Sec. I: a single switch has "few megaWatt [mW] at 1 GHz".
        p = model.power_mw(6, 1000.0, 500.0)
        assert 1.0 < p < 20.0

    def test_negative_load_rejected(self, model):
        with pytest.raises(ValueError):
            model.traffic_power_mw(5, -1.0)

    def test_too_few_ports_rejected(self, model):
        with pytest.raises(ValueError):
            model.power_mw(1, 400.0, 0.0)


class TestAreaDelay:
    def test_area_monotone(self, model):
        assert model.area_mm2(10) > model.area_mm2(3)

    def test_area_small(self, model):
        # "a single switch ... has low area (few thousand gates)".
        assert model.area_mm2(8) < 0.1

    def test_delay_one_cycle(self, model):
        assert model.delay_cycles() == 1


class TestProperties:
    @given(ports=st.integers(min_value=2, max_value=40))
    def test_energy_per_flit_positive_and_monotone(self, ports):
        model = SwitchModel()
        assert model.energy_per_flit_pj(ports) > 0
        assert model.energy_per_flit_pj(ports + 1) > model.energy_per_flit_pj(ports)

    @given(
        ports=st.integers(min_value=2, max_value=40),
        freq=st.floats(min_value=50.0, max_value=900.0),
        load=st.floats(min_value=0.0, max_value=1e4),
    )
    def test_power_nonnegative(self, ports, freq, load):
        model = SwitchModel()
        assert model.power_mw(ports, freq, load) > 0
