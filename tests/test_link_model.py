"""Planar link model (repro.models.link_model)."""

import pytest
from hypothesis import given, strategies as st

from repro.models.link_model import LinkModel


@pytest.fixture
def model():
    return LinkModel()


class TestEnergyPower:
    def test_energy_linear_in_length(self, model):
        assert model.energy_per_flit_pj(2.0) == pytest.approx(
            2 * model.energy_per_flit_pj(1.0)
        )

    def test_zero_length_zero_energy(self, model):
        assert model.energy_per_flit_pj(0.0) == 0.0

    def test_power_includes_static(self, model):
        assert model.power_mw(2.0, 0.0) == pytest.approx(model.static_power_mw(2.0))

    def test_negative_length_rejected(self, model):
        with pytest.raises(ValueError):
            model.energy_per_flit_pj(-1.0)

    def test_negative_load_rejected(self, model):
        with pytest.raises(ValueError):
            model.traffic_power_mw(1.0, -5.0)


class TestPipelining:
    def test_short_link_single_stage(self, model):
        assert model.pipeline_stages(0.5, 400.0) == 1

    def test_zero_length_single_stage(self, model):
        assert model.pipeline_stages(0.0, 400.0) == 1

    def test_long_link_pipelined(self, model):
        # At 400 MHz the cycle is 2.5 ns; at 0.9 ns/mm a 6 mm wire needs
        # ceil(5.4 / 2.5) = 3 stages.
        assert model.pipeline_stages(6.0, 400.0) == 3

    def test_stage_count_monotone_in_frequency(self, model):
        assert model.pipeline_stages(5.0, 800.0) >= model.pipeline_stages(5.0, 400.0)

    def test_max_single_cycle_length(self, model):
        length = model.max_single_cycle_length_mm(400.0)
        assert model.pipeline_stages(length * 0.99, 400.0) == 1
        assert model.pipeline_stages(length * 1.01, 400.0) == 2

    def test_delay_equals_stages(self, model):
        assert model.delay_cycles(6.0, 400.0) == model.pipeline_stages(6.0, 400.0)

    def test_rejects_nonpositive_frequency(self, model):
        with pytest.raises(ValueError):
            model.pipeline_stages(1.0, 0.0)


class TestProperties:
    @given(
        length=st.floats(min_value=0.0, max_value=50.0),
        freq=st.floats(min_value=100.0, max_value=1000.0),
    )
    def test_stages_at_least_one(self, length, freq):
        assert LinkModel().pipeline_stages(length, freq) >= 1

    @given(length=st.floats(min_value=0.0, max_value=50.0))
    def test_power_nonnegative(self, length):
        assert LinkModel().power_mw(length, 100.0) >= 0.0
