"""Benchmark generators (repro.bench)."""

import pytest

from repro.bench.builder import build_benchmark
from repro.bench.layer_assignment import assign_layers
from repro.bench.registry import TABLE1_BENCHMARKS, get_benchmark, list_benchmarks
from repro.errors import SpecError
from repro.graphs.comm_graph import build_comm_graph
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec
from repro.spec.validate import validate_specs


def _graph(n=8, flows=None):
    cores = CoreSpec(cores=[Core(f"C{i}", 1, 1, 1.5 * i, 0, 0) for i in range(n)])
    flows = flows or [
        TrafficFlow(f"C{i}", f"C{(i + 1) % n}", 100 * (i + 1), 8) for i in range(n)
    ]
    return build_comm_graph(cores, CommSpec(flows=flows))


class TestLayerAssignment:
    def test_single_layer(self):
        g = _graph()
        assert assign_layers(g, 1) == [0] * 8

    def test_min_cut_balanced(self):
        g = _graph()
        layers = assign_layers(g, 2, strategy="min_cut")
        assert sorted(set(layers)) == [0, 1]
        counts = [layers.count(l) for l in (0, 1)]
        assert abs(counts[0] - counts[1]) <= 1

    def test_stack_strategy_covers_all_layers(self):
        g = _graph(n=9)
        layers = assign_layers(g, 3, strategy="stack")
        assert sorted(set(layers)) == [0, 1, 2]
        assert len(layers) == 9

    def test_stack_area_aware_balances_area(self):
        g = _graph(n=8)
        areas = [4.0, 1.0, 1.0, 1.0, 4.0, 1.0, 1.0, 1.0]
        layers = assign_layers(g, 2, strategy="stack", areas=areas)
        per_layer = [
            sum(a for a, l in zip(areas, layers) if l == ll) for ll in (0, 1)
        ]
        assert abs(per_layer[0] - per_layer[1]) <= 3.0

    def test_stack_pairs_heavy_partners_across_layers(self):
        cores = CoreSpec(cores=[Core(f"C{i}", 1, 1, 1.5 * i, 0, 0) for i in range(4)])
        comm = CommSpec(flows=[
            TrafficFlow("C0", "C1", 1000, 8),
            TrafficFlow("C2", "C3", 900, 8),
        ])
        g = build_comm_graph(cores, comm)
        layers = assign_layers(g, 2, strategy="stack")
        assert layers[0] != layers[1]
        assert layers[2] != layers[3]

    def test_bad_args(self):
        g = _graph()
        with pytest.raises(SpecError):
            assign_layers(g, 0)
        with pytest.raises(SpecError):
            assign_layers(g, 100)
        with pytest.raises(SpecError):
            assign_layers(g, 2, strategy="random")
        with pytest.raises(SpecError):
            assign_layers(g, 2, areas=[1.0])


class TestBuilder:
    def test_build_small_benchmark(self):
        cores = [(f"C{i}", 1.0, 1.0) for i in range(6)]
        flows = [
            TrafficFlow(f"C{i}", f"C{(i + 1) % 6}", 100, 10) for i in range(6)
        ]
        bench = build_benchmark(
            "toy", cores, flows, num_layers=2, floorplan_moves=400
        )
        assert bench.num_cores == 6
        assert bench.num_layers == 2
        assert bench.core_spec_3d.num_layers == 2
        assert bench.core_spec_2d.num_layers == 1
        validate_specs(bench.core_spec_3d, bench.comm_spec)
        validate_specs(bench.core_spec_2d, bench.comm_spec)

    def test_deterministic(self):
        cores = [(f"C{i}", 1.0, 1.0) for i in range(5)]
        flows = [TrafficFlow("C0", "C1", 100, 10), TrafficFlow("C2", "C3", 80, 10)]
        a = build_benchmark("t", cores, flows, 2, floorplan_moves=300)
        b = build_benchmark("t", cores, flows, 2, floorplan_moves=300)
        assert [(c.name, c.x, c.y, c.layer) for c in a.core_spec_3d] == [
            (c.name, c.x, c.y, c.layer) for c in b.core_spec_3d
        ]


class TestRegistry:
    def test_list_contains_all_paper_benchmarks(self):
        names = list_benchmarks()
        for expected in TABLE1_BENCHMARKS + ("d26_media",):
            assert expected in names

    def test_unknown_name_rejected(self):
        with pytest.raises(SpecError):
            get_benchmark("bogus")

    def test_d26_media_structure(self):
        bench = get_benchmark("d26_media", floorplan_moves=400)
        assert bench.num_cores == 26
        assert bench.num_layers == 3
        names = set(bench.core_spec_3d.names)
        assert "ARM" in names and "DMA" in names and "MEM7" in names

    def test_d36_structure_and_bandwidth_conservation(self):
        b4 = get_benchmark("d36_4", floorplan_moves=400)
        b8 = get_benchmark("d36_8", floorplan_moves=400)
        assert b4.num_cores == b8.num_cores == 36
        assert b4.num_flows == 72 and b8.num_flows == 144
        # "The total bandwidth is the same in the three benchmarks."
        assert b4.comm_spec.total_bandwidth == pytest.approx(
            b8.comm_spec.total_bandwidth
        )

    def test_d35_bot_structure(self):
        bench = get_benchmark("d35_bot", floorplan_moves=400)
        assert bench.num_cores == 35
        shared_flows = [f for f in bench.comm_spec if f.dst.startswith("S")]
        assert len(shared_flows) == 48  # 16 procs x 3 shared memories

    def test_pipelines(self):
        b65 = get_benchmark("d65_pipe", floorplan_moves=300)
        assert b65.num_cores == 65 and b65.num_flows == 64
        b38 = get_benchmark("d38_tvopd", floorplan_moves=300)
        assert b38.num_cores == 38
        assert b38.num_flows >= 37

    def test_caching(self):
        a = get_benchmark("d36_4", floorplan_moves=400)
        b = get_benchmark("d36_4", floorplan_moves=400)
        assert a is b
