"""Hypothesis property tests for the traffic-scenario library.

Two contracts from ``repro.noc.scenarios``'s docstring are load-bearing for
the whole simulation stack:

* **schedule determinism** — equal (seed, scenario, flows, probs, cycles)
  must build the *identical* injection schedule, because the array engine
  and the frozen naive reference each rebuild the schedule independently
  and their trajectories are asserted bit-identical;
* **equal mean load** — hotspot and scaled are exactly Bernoulli at their
  effective (boosted/scaled) rates, and bursty offers the *same average
  load* as Bernoulli at every rate — differently clumped, never more or
  less traffic in expectation.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.noc.scenarios import (
    BernoulliScenario,
    BurstyScenario,
    HotspotScenario,
    ScaledScenario,
    build_schedule,
)
from repro.rng import make_rng

#: Flow lists are (src, dst) pairs over a small core id space.
flows_and_probs = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            min_size=n, max_size=n,
        ),
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False), min_size=n, max_size=n
        ),
    )
)

scenarios = st.one_of(
    st.just(BernoulliScenario()),
    st.builds(
        HotspotScenario,
        hotspot_core=st.one_of(st.none(), st.integers(0, 4)),
        boost=st.floats(0.5, 8.0, allow_nan=False),
    ),
    st.builds(
        BurstyScenario,
        mean_burst_cycles=st.floats(1.0, 20.0, allow_nan=False),
        peak=st.floats(0.5, 8.0, allow_nan=False),
    ),
    st.builds(ScaledScenario, factor=st.floats(0.0, 3.0, allow_nan=False)),
)


def _schedule(scenario, flows, probs, cycles, seed):
    # The engine/reference identity contract: all randomness comes from a
    # freshly seeded make_rng(seed, "wormhole") at schedule-build time.
    return build_schedule(
        scenario, flows, probs, cycles, make_rng(seed, "wormhole")
    )


class TestScheduleDeterminism:
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(fp=flows_and_probs, scenario=scenarios,
           cycles=st.integers(1, 200), seed=st.integers(0, 2**32 - 1))
    def test_equal_seed_equal_schedule(self, fp, scenario, cycles, seed):
        flows, probs = fp
        first = _schedule(scenario, flows, probs, cycles, seed)
        second = _schedule(scenario, flows, probs, cycles, seed)
        assert first == second

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(fp=flows_and_probs, scenario=scenarios,
           cycles=st.integers(1, 200), seed=st.integers(0, 2**32 - 1))
    def test_schedule_shape(self, fp, scenario, cycles, seed):
        flows, probs = fp
        sched = _schedule(scenario, flows, probs, cycles, seed)
        assert len(sched) == cycles
        for row in sched:
            # Ascending unique in-range flow indices: the within-cycle
            # injection order both simulator cores rely on.
            assert row == sorted(set(row))
            assert all(0 <= fi < len(flows) for fi in row)


class TestTinyProbabilities:
    """Near-zero rates must produce (near-)empty schedules, never crash."""

    def test_denormal_p_no_overflow(self):
        sched = _schedule(BernoulliScenario(), [(0, 1)], [5e-324], 50, 0)
        assert sum(len(row) for row in sched) == 0

    def test_tiny_normal_p_no_overflow(self):
        # p ~ 2.3e-308: 1/log1p(-p) is finite (~ -4.3e307) but the gap
        # product log(1 - U) * inv overflows to inf for U >= ~0.984 —
        # regression for the OverflowError this used to raise.
        class HighDraws:
            def random(self):
                return 0.999999

        sched = build_schedule(
            BernoulliScenario(), [(0, 1)], [2.3e-308], 20, HighDraws()
        )
        assert sum(len(row) for row in sched) == 0

    @settings(max_examples=30, deadline=None, derandomize=True)
    @given(p=st.floats(5e-324, 1e-300, allow_nan=False),
           seed=st.integers(0, 2**32 - 1))
    def test_subnormal_band_never_crashes(self, p, seed):
        sched = _schedule(BernoulliScenario(), [(0, 1)], [p], 100, seed)
        assert len(sched) == 100


class TestEqualMeanLoad:
    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(fp=flows_and_probs, boost=st.floats(0.5, 8.0, allow_nan=False),
           hot=st.integers(0, 4), cycles=st.integers(1, 150),
           seed=st.integers(0, 2**32 - 1))
    def test_hotspot_is_bernoulli_at_boosted_rates(
        self, fp, boost, hot, cycles, seed
    ):
        """At matched (boosted) per-flow rates, hotspot *is* Bernoulli:
        the schedules agree draw for draw, not just in expectation."""
        flows, probs = fp
        hotspot = HotspotScenario(hotspot_core=hot, boost=boost)
        matched = [
            p * boost if dst == hot else p
            for (_src, dst), p in zip(flows, probs)
        ]
        assert _schedule(hotspot, flows, probs, cycles, seed) == _schedule(
            BernoulliScenario(), flows, matched, cycles, seed
        )

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(fp=flows_and_probs, factor=st.floats(0.0, 3.0, allow_nan=False),
           cycles=st.integers(1, 150), seed=st.integers(0, 2**32 - 1))
    def test_scaled_is_bernoulli_at_scaled_rates(
        self, fp, factor, cycles, seed
    ):
        flows, probs = fp
        scaled_probs = [p * factor for p in probs]
        assert _schedule(
            ScaledScenario(factor=factor), flows, probs, cycles, seed
        ) == _schedule(BernoulliScenario(), flows, scaled_probs, cycles, seed)

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(p=st.floats(0.02, 0.6, allow_nan=False),
           mean_burst=st.floats(1.0, 16.0, allow_nan=False),
           seed=st.integers(0, 2**31 - 1))
    def test_bursty_offers_bernoulli_mean_load(self, p, mean_burst, seed):
        """Bursty clumps the traffic but keeps the average offered load:
        over a long horizon the injection count matches the Bernoulli
        expectation ``p * cycles`` within a generous statistical margin."""
        cycles = 30_000
        flows, probs = [(0, 1)], [p]
        sched = _schedule(
            BurstyScenario(mean_burst_cycles=mean_burst), flows, probs,
            cycles, seed,
        )
        injected = sum(len(row) for row in sched)
        expected = p * cycles
        # The on-off chain correlates successive cycles, inflating the
        # sample-mean deviation by roughly sqrt(2 * mean_burst); allow a
        # 8-sigma band on top of that so derandomized examples never flap.
        sigma = math.sqrt(cycles * p * (1.0 - p))
        margin = 8.0 * sigma * math.sqrt(2.0 * mean_burst)
        assert abs(injected - expected) <= margin

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(p=st.floats(0.02, 0.6, allow_nan=False),
           seed=st.integers(0, 2**31 - 1))
    def test_bernoulli_mean_matches_rate(self, p, seed):
        cycles = 30_000
        sched = _schedule(BernoulliScenario(), [(0, 1)], [p], cycles, seed)
        injected = sum(len(row) for row in sched)
        sigma = math.sqrt(cycles * p * (1.0 - p))
        assert abs(injected - p * cycles) <= 8.0 * sigma
