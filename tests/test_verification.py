"""Design-rule verifier (repro.core.verification)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.synthesis import SunFloor3D
from repro.core.verification import verify_design_point
from repro.models.library import default_library


@pytest.fixture(scope="module")
def synthesized():
    from tests.conftest import grid_core_spec
    from repro.spec.comm_spec import CommSpec, MessageType, TrafficFlow

    core_spec = grid_core_spec(9, 3)
    comm_spec = CommSpec(flows=[
        TrafficFlow("C0", "C3", 500, 10),
        TrafficFlow("C3", "C0", 350, 10, MessageType.RESPONSE),
        TrafficFlow("C1", "C4", 180, 8),
        TrafficFlow("C4", "C7", 260, 12),
        TrafficFlow("C2", "C5", 90, 14),
        TrafficFlow("C5", "C8", 310, 9),
        TrafficFlow("C6", "C0", 70, 16),
    ])
    tool = SunFloor3D(core_spec, comm_spec,
                      config=SynthesisConfig(max_ill=12))
    result = tool.synthesize()
    return tool, result


class TestVerifier:
    def test_all_synthesized_points_pass(self, synthesized):
        tool, result = synthesized
        lib = default_library()
        for point in result.points:
            report = verify_design_point(point, tool.graph, lib)
            assert report.ok, report.summary()
            assert report.checks_run == 10

    def test_detects_missing_route(self, synthesized):
        tool, result = synthesized
        point = result.best_power()
        removed = dict(point.topology.routes)
        key = next(iter(removed))
        del point.topology.routes[key]
        try:
            report = verify_design_point(point, tool.graph, default_library())
            assert not report.ok
            assert any("no route" in v for v in report.violations)
        finally:
            point.topology.routes = removed

    def test_detects_overloaded_link(self, synthesized):
        tool, result = synthesized
        point = result.best_power()
        link = point.topology.links[0]
        original = link.load_mbps
        link.load_mbps = 10_000.0
        try:
            report = verify_design_point(point, tool.graph, default_library())
            assert any("over capacity" in v for v in report.violations)
        finally:
            link.load_mbps = original

    def test_detects_ill_violation(self, synthesized):
        tool, result = synthesized
        point = result.best_power()
        # Tamper with the recorded config: pretend max_ill was 0.
        strict = point.config.with_(max_ill=0)
        original = point.config
        point.config = strict
        try:
            report = verify_design_point(point, tool.graph, default_library())
            if point.topology.ill:
                assert any("inter-layer links" in v for v in report.violations)
        finally:
            point.config = original

    def test_detects_oversized_switch(self, synthesized):
        tool, result = synthesized
        point = result.best_power()
        sw = point.topology.switches[0]
        original = sw.in_ports
        sw.in_ports = 99
        try:
            report = verify_design_point(point, tool.graph, default_library())
            assert any("above the limit" in v for v in report.violations)
        finally:
            sw.in_ports = original

    def test_detects_floorplan_overlap(self, synthesized):
        tool, result = synthesized
        point = result.best_power()
        from repro.floorplan.placement import PlacedComponent

        first_core = point.floorplan.of_kind("core")[0]
        clone = PlacedComponent(
            name="sw999", kind="switch",
            rect=first_core.rect, layer=first_core.layer,
        )
        point.floorplan.add(clone)
        try:
            report = verify_design_point(point, tool.graph, default_library())
            assert any("overlap" in v for v in report.violations)
        finally:
            point.floorplan.components.remove(clone)

    def test_report_summary_format(self, synthesized):
        tool, result = synthesized
        report = verify_design_point(
            result.best_power(), tool.graph, default_library()
        )
        assert "PASS" in report.summary()
