"""Property-based integration: random designs through the whole flow.

Hypothesis generates small random SoCs (core counts, layer assignments,
traffic patterns); every design point the flow produces must pass the
independent design-rule verifier of :mod:`repro.core.verification` — route
completeness, deadlock freedom, capacity, TSV and switch-size constraints,
latency, floorplan legality, TSV macros.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import SynthesisConfig
from repro.core.synthesis import SunFloor3D
from repro.core.verification import verify_design_point
from repro.models.library import default_library
from repro.spec.comm_spec import CommSpec, MessageType, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec

from tests.conftest import grid_core_spec


@st.composite
def random_design(draw):
    n = draw(st.integers(min_value=4, max_value=8))
    num_layers = draw(st.integers(min_value=1, max_value=3))
    if num_layers > n:
        num_layers = n
    core_spec = grid_core_spec(n, num_layers)

    n_flows = draw(st.integers(min_value=2, max_value=8))
    pairs = set()
    flows = []
    for _ in range(n_flows):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        if src == dst or (src, dst) in pairs:
            continue
        pairs.add((src, dst))
        flows.append(TrafficFlow(
            src=f"C{src}", dst=f"C{dst}",
            bandwidth=draw(st.sampled_from([50, 150, 300, 600])),
            latency=draw(st.sampled_from([6, 10, 16])),
            message_type=draw(st.sampled_from(list(MessageType))),
        ))
    if not flows:
        flows.append(TrafficFlow("C0", "C1", 100, 10))
    return core_spec, CommSpec(flows=flows)


class TestRandomDesigns:
    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(design=random_design())
    def test_every_point_verifies(self, design):
        core_spec, comm_spec = design
        config = SynthesisConfig(max_ill=8, switch_count_range=(1, 4))
        tool = SunFloor3D(core_spec, comm_spec, config=config)
        result = tool.synthesize()
        library = default_library()
        for point in result.points:
            report = verify_design_point(point, tool.graph, library)
            assert report.ok, report.summary()

    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(design=random_design(), max_ill=st.sampled_from([0, 1, 3]))
    def test_tight_ill_never_violated(self, design, max_ill):
        """However tight the TSV constraint, accepted points respect it."""
        core_spec, comm_spec = design
        config = SynthesisConfig(max_ill=max_ill, switch_count_range=(1, 4))
        result = SunFloor3D(core_spec, comm_spec, config=config).synthesize()
        for point in result.points:
            assert point.metrics.max_ill_used <= max_ill
