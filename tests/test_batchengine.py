"""Vectorized K-replication batch engine vs solo engine vs frozen reference.

The contract of :mod:`repro.noc.batchengine` (the batch-simulator PR): for
every replication in a batch, the returned :class:`SimulationStats` *and*
the per-cycle ``("deliver"|"eject", cycle, link, pid)`` trace are
bit-identical to a solo :meth:`WormholeSimulator.run` at that seed — and,
transitively, to the frozen :class:`ReferenceWormholeSimulator`. Per
replication, nothing may depend on K: not the stats, not the trace, not
the drain accounting of a sibling that saturates or finishes early.

The harness has four layers:

* a trajectory-identity matrix over topology x scenario x packet length x
  buffer depth x (injection scale, drain limit), batch against solo, plus
  a three-way leg that folds in the frozen naive reference;
* pinning tests for the vectorised schedule builder and RNG bridge
  (``_mt_state`` / ``_bernoulli_events`` must replay ``make_rng`` /
  ``build_schedule`` exactly, including degenerate probabilities);
* Hypothesis properties: permuting the replication axis permutes results,
  splitting one batch into two merges to the same campaign outcome, and a
  replication's result never depends on its siblings (K-independence);
* drain-limit asymmetry regressions: one saturated replication hitting
  its drain limit keeps solo-identical lost-packet accounting and cannot
  stretch or truncate its siblings' drain phases.
"""

import functools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from _simtopo import contended_topology, cross_contended_topology

from repro.errors import SynthesisError
from repro.noc import batchengine
from repro.noc.reference import ReferenceWormholeSimulator
from repro.noc.scenarios import build_schedule, make_scenario
from repro.noc.simulator import WormholeSimulator
from repro.rng import make_rng


def _solo(topo, seed, *, L=4, depth=4, cycles=400, warmup=100, scale=1.0,
          scenario=None, drain=None, sim_cls=WormholeSimulator):
    trace = []
    stats = sim_cls(
        topo, seed=seed, packet_length_flits=L, buffer_depth=depth
    ).run(cycles=cycles, warmup=warmup, injection_scale=scale,
          scenario=scenario, drain_limit=drain, trace=trace)
    return stats, trace


def _batch(topo, seeds, *, L=4, depth=4, cycles=400, warmup=100, scale=1.0,
           scenario=None, drain=None):
    traces = [[] for _ in seeds]
    sim = WormholeSimulator(
        topo, seed=0, packet_length_flits=L, buffer_depth=depth
    )
    stats = sim.run_batch(
        list(seeds), cycles=cycles, warmup=warmup, injection_scale=scale,
        scenario=scenario, drain_limit=drain, traces=traces,
    )
    return stats, traces


class TestBatchTrajectoryIdentity:
    """Batch output is the tuple of solo outputs, trajectory for trajectory."""

    @pytest.mark.parametrize("topo_factory", [
        contended_topology, cross_contended_topology,
    ], ids=["contended", "cross"])
    @pytest.mark.parametrize("scenario", [None, "hotspot", "bursty"])
    @pytest.mark.parametrize("L,depth", [(1, 1), (4, 4), (3, 2)])
    def test_matrix_vs_solo(self, topo_factory, scenario, L, depth):
        topo = topo_factory()
        seeds = list(range(5))
        for scale, drain in [(0.3, None), (2.0, None), (2.0, 0), (2.5, 7)]:
            kw = dict(L=L, depth=depth, scale=scale,
                      scenario=scenario, drain=drain)
            batch_stats, batch_traces = _batch(topo, seeds, **kw)
            for i, seed in enumerate(seeds):
                solo_stats, solo_trace = _solo(topo, seed, **kw)
                assert batch_stats[i] == solo_stats, (scale, drain, seed)
                assert batch_traces[i] == solo_trace, (scale, drain, seed)

    @pytest.mark.parametrize("scale,scenario,drain", [
        (0.3, None, None),
        (2.0, "hotspot", 7),
        (1.5, "bursty", None),
        (2.0, None, 0),
    ])
    def test_three_way_with_frozen_reference(
        self, contended_topo, scale, scenario, drain
    ):
        seeds = [0, 1, 2]
        kw = dict(scale=scale, scenario=scenario, drain=drain)
        batch_stats, batch_traces = _batch(contended_topo, seeds, **kw)
        for i, seed in enumerate(seeds):
            eng_stats, eng_trace = _solo(contended_topo, seed, **kw)
            ref_stats, ref_trace = _solo(
                contended_topo, seed, sim_cls=ReferenceWormholeSimulator, **kw
            )
            assert batch_stats[i] == eng_stats == ref_stats
            assert batch_traces[i] == eng_trace == ref_trace

    def test_ragged_early_finish(self, contended_topo):
        """Replications under wildly different loads finish draining at
        different cycles; the early finishers must freeze exactly where
        their solo runs end while heavier siblings keep simulating."""
        seeds = [0, 1, 2]
        per_rep = ["scaled:0.05", None, "scaled:3"]
        batch_stats, batch_traces = _batch(
            contended_topo, seeds, scale=1.0, scenario=per_rep,
            cycles=800, warmup=100,
        )
        finish = set()
        for i, (seed, scen) in enumerate(zip(seeds, per_rep)):
            solo_stats, solo_trace = _solo(
                contended_topo, seed, scale=1.0, scenario=scen,
                cycles=800, warmup=100,
            )
            assert batch_stats[i] == solo_stats
            assert batch_traces[i] == solo_trace
            finish.add(solo_stats.drain_cycles)
        assert len(finish) > 1, "loads did not produce ragged finishes"

    def test_k1_degenerates_to_solo(self, contended_topo):
        batch_stats, batch_traces = _batch(contended_topo, [3], scale=2.0)
        solo_stats, solo_trace = _solo(contended_topo, 3, scale=2.0)
        assert batch_stats == [solo_stats]
        assert batch_traces == [solo_trace]

    def test_empty_batch(self, contended_topo):
        sim = WormholeSimulator(contended_topo, seed=0)
        assert sim.run_batch([], cycles=200, warmup=0) == []

    def test_hazard_repair_exercised_and_identical(self):
        """The saturated cross-contended run must take the lockstep
        engine's hazard-repair path (DIRTY_REDOS grows) and still match
        solo trajectories — the repairs are invisible in the output."""
        topo = cross_contended_topology()
        seeds = list(range(5))
        before = batchengine.DIRTY_REDOS
        batch_stats, batch_traces = _batch(
            topo, seeds, depth=2, scale=2.5, cycles=600, warmup=100,
        )
        assert batchengine.DIRTY_REDOS > before
        for i, seed in enumerate(seeds):
            solo_stats, solo_trace = _solo(
                topo, seed, depth=2, scale=2.5, cycles=600, warmup=100,
            )
            assert batch_stats[i] == solo_stats
            assert batch_traces[i] == solo_trace


class TestScheduleFastPath:
    """The vectorised schedule builder replays the scalar one exactly."""

    @pytest.mark.parametrize("seed", [0, 1, 7, 123456789, 2**63 - 1])
    def test_mt_state_matches_make_rng(self, seed):
        scalar = make_rng(seed, "wormhole")
        vector = batchengine._mt_state(seed, "wormhole")
        assert [scalar.random() for _ in range(2000)] == list(
            vector.random_sample(2000)
        )

    @pytest.mark.parametrize(
        "spec", [None, "hotspot", "scaled:1.5", "hotspot:2", "scaled:0.25"]
    )
    def test_fast_schedule_matches_scalar(self, contended_topo, spec):
        sim = WormholeSimulator(contended_topo, seed=0)
        flows = sorted(contended_topo.routes)
        scen = make_scenario(spec)
        cycles = 600
        for scale in [0.05, 0.3, 1.0, 2.5]:
            probs = [sim._inject_prob[f] * scale for f in flows]
            eff = scen.bernoulli_probs(flows, probs)
            assert eff is not None  # these scenarios have a Bernoulli form
            for seed in range(4):
                sched = build_schedule(
                    scen, flows, probs, cycles, make_rng(seed, "wormhole")
                )
                fi_k, cyc_k = batchengine._bernoulli_events(
                    eff, cycles, batchengine._mt_state(seed, "wormhole")
                )
                order = np.lexsort((fi_k, cyc_k))
                got = list(zip(cyc_k[order].tolist(), fi_k[order].tolist()))
                ref = [(c, fi) for c, row in enumerate(sched) for fi in row]
                assert got == ref, (spec, scale, seed)

    @pytest.mark.parametrize("probs", [
        [1.0, 0.0, 0.5, 2.0],           # clipped and certain injections
        [1e-12, 0.9999, 0.0, 1.0],      # near-0 / near-1
        [5e-309, 0.5, 1e-300, 0.01],    # subnormals
    ])
    def test_extreme_probabilities(self, probs):
        from repro.noc.scenarios import _bernoulli_schedule

        cycles = 400
        for seed in range(5):
            sched = _bernoulli_schedule(
                probs, cycles, make_rng(seed, "wormhole")
            )
            fi_k, cyc_k = batchengine._bernoulli_events(
                probs, cycles, batchengine._mt_state(seed, "wormhole")
            )
            order = np.lexsort((fi_k, cyc_k))
            got = list(zip(cyc_k[order].tolist(), fi_k[order].tolist()))
            ref = [(c, fi) for c, row in enumerate(sched) for fi in row]
            assert got == ref, (probs, seed)


class TestFlitStateBound:
    def test_oversized_batch_rejected(self, contended_topo):
        """``K x P_max x L`` past 2^31 must refuse up front (the flit
        arrays are int32-indexed), not overflow silently."""
        sim = WormholeSimulator(
            contended_topo, seed=0, packet_length_flits=2**26
        )
        for flow in sim._inject_prob:
            sim._inject_prob[flow] = 1.0
        with pytest.raises(SynthesisError, match="2\\^31"):
            sim.run_batch(list(range(4)), cycles=20, warmup=10)


# --- Hypothesis properties ---------------------------------------------------
#
# Fixed, fast configuration: the property is about the replication axis,
# not the traffic, so one moderately contended operating point suffices.

_PROP_TOPO = contended_topology()
_PROP_KW = dict(cycles=300, warmup=50, scale=1.5)


@functools.lru_cache(maxsize=None)
def _prop_solo(seed):
    stats, trace = _solo(_PROP_TOPO, seed, **_PROP_KW)
    return stats, tuple(trace)


def _prop_batch(seeds):
    stats, traces = _batch(_PROP_TOPO, list(seeds), **_PROP_KW)
    return stats, [tuple(t) for t in traces]


_seed_lists = st.lists(
    st.integers(0, 7), min_size=1, max_size=5, unique=True
)


class TestReplicationAxisProperties:
    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_permuting_seeds_permutes_results(self, data):
        seeds = data.draw(_seed_lists)
        perm = data.draw(st.permutations(seeds))
        stats_a, traces_a = _prop_batch(seeds)
        stats_b, traces_b = _prop_batch(perm)
        by_seed_a = dict(zip(seeds, zip(stats_a, traces_a)))
        by_seed_b = dict(zip(perm, zip(stats_b, traces_b)))
        assert by_seed_a == by_seed_b

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_split_batches_merge_to_same_campaign(self, data):
        """Chunking K seeds as K1 + K2 — what ``batch=`` does to a
        campaign's seed list — yields the same flattened results as one
        batch, so the campaign outcome is chunking-independent."""
        seeds = data.draw(_seed_lists)
        cut = data.draw(st.integers(0, len(seeds)))
        whole_stats, whole_traces = _prop_batch(seeds)
        head_stats, head_traces = _prop_batch(seeds[:cut])
        tail_stats, tail_traces = _prop_batch(seeds[cut:])
        assert head_stats + tail_stats == whole_stats
        assert head_traces + tail_traces == whole_traces

    @settings(max_examples=12, deadline=None)
    @given(seeds=_seed_lists)
    def test_replication_never_depends_on_k(self, seeds):
        stats, traces = _prop_batch(seeds)
        for i, seed in enumerate(seeds):
            solo_stats, solo_trace = _prop_solo(seed)
            assert stats[i] == solo_stats
            assert traces[i] == solo_trace


class TestDrainAsymmetry:
    """A replication that saturates and hits its drain limit is an island:
    its lost-packet accounting matches solo, and its siblings' drain
    phases are neither extended nor cut short by sharing a batch."""

    _PER_REP = ["scaled:0.2", "scaled:8", "scaled:0.2"]

    def _run(self, topo, drain):
        seeds = [0, 1, 2]
        kw = dict(scale=1.0, scenario=self._PER_REP, drain=drain,
                  cycles=600, warmup=100)
        batch_stats, _ = _batch(topo, seeds, **kw)
        solos = [
            _solo(topo, seed, scale=1.0, scenario=scen, drain=drain,
                  cycles=600, warmup=100)[0]
            for seed, scen in zip(seeds, self._PER_REP)
        ]
        return batch_stats, solos

    def test_saturated_replication_keeps_solo_drain_accounting(
        self, contended_topo
    ):
        drain = 40
        batch_stats, solos = self._run(contended_topo, drain)
        # The middle replication saturates, exhausts its drain budget and
        # loses packets — all exactly as its solo run does.
        assert solos[1].drain_cycles == drain
        assert solos[1].packets_delivered < solos[1].packets_injected
        assert batch_stats[1] == solos[1]
        assert batch_stats[1].drain_cycles == drain

    def test_saturated_sibling_cannot_stretch_or_truncate_drains(
        self, contended_topo
    ):
        batch_stats, solos = self._run(contended_topo, 40)
        for got, want in zip(batch_stats, solos):
            assert got.drain_cycles == want.drain_cycles
            assert got == want
        # The light replications drain fully well before the saturated
        # sibling's budget expires: their drains must stay short.
        assert batch_stats[0].drain_cycles < 40
        assert batch_stats[0].delivery_ratio == 1.0

    def test_drain_limit_zero_cuts_every_replication_alike(
        self, contended_topo
    ):
        batch_stats, solos = self._run(contended_topo, 0)
        assert [s.drain_cycles for s in batch_stats] == [0, 0, 0]
        assert batch_stats == solos
