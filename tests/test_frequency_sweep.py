"""Frequency sweep (repro.core.frequency_sweep, Fig. 3 outer loop)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.frequency_sweep import (
    FrequencySweepResult,
    find_lowest_feasible_frequency,
    minimum_feasible_frequency,
    sweep_frequencies,
    sweep_link_widths,
)
from repro.errors import SynthesisError
from repro.noc.export import design_point_to_dict


@pytest.fixture
def specs(tiny_specs):
    return tiny_specs


class TestMinimumFrequency:
    def test_bound_from_max_flow(self, specs):
        _, comm_spec = specs
        # Max flow 400 MB/s on 32-bit links: 4 B/flit -> >= 100 MHz.
        assert minimum_feasible_frequency(comm_spec, 32) == pytest.approx(100.0)

    def test_wider_links_lower_bound(self, specs):
        _, comm_spec = specs
        assert minimum_feasible_frequency(comm_spec, 64) == pytest.approx(50.0)


class TestSweep:
    def test_sweep_collects_per_frequency(self, specs):
        core_spec, comm_spec = specs
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        sweep = sweep_frequencies(core_spec, comm_spec, (200.0, 400.0), config=cfg)
        assert sweep.frequencies == [200.0, 400.0]
        assert sweep.per_frequency[400.0].points
        assert sweep.all_points()

    def test_infeasible_frequency_skipped(self, specs):
        core_spec, comm_spec = specs
        # At 50 MHz capacity is 200 MB/s; the 400 MB/s flow cannot fit.
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        sweep = sweep_frequencies(core_spec, comm_spec, (50.0, 400.0), config=cfg)
        assert not sweep.per_frequency[50.0].points
        assert sweep.per_frequency[400.0].points

    def test_lowest_frequency_has_best_power(self, specs):
        """The paper's observation: best power at the lowest feasible
        frequency (clock power dominates at fixed load)."""
        core_spec, comm_spec = specs
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        sweep = sweep_frequencies(
            core_spec, comm_spec, (200.0, 400.0, 700.0), config=cfg
        )
        per_freq = sweep.best_power_per_frequency()
        powers = {f: p.total_power_mw for f, p in per_freq.items() if p}
        assert powers[200.0] < powers[700.0]
        best = sweep.best_power()
        assert best.config.frequency_mhz == 200.0

    def test_find_lowest_feasible(self, specs):
        core_spec, comm_spec = specs
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        lowest = find_lowest_feasible_frequency(
            core_spec, comm_spec, (50.0, 200.0, 400.0), config=cfg
        )
        assert lowest == 200.0

    def test_no_feasible_frequency_raises(self, specs):
        core_spec, comm_spec = specs
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        with pytest.raises(SynthesisError):
            find_lowest_feasible_frequency(
                core_spec, comm_spec, (10.0, 20.0), config=cfg
            )

    def test_bad_frequency_rejected(self, specs):
        core_spec, comm_spec = specs
        with pytest.raises(SynthesisError):
            sweep_frequencies(core_spec, comm_spec, (0.0,))

    def test_all_frequencies_validated_up_front(self, specs):
        """A bad value midway through the list must abort before any point
        is synthesized (no work silently discarded)."""
        core_spec, comm_spec = specs
        calls = []
        with pytest.raises(SynthesisError):
            sweep_frequencies(
                core_spec, comm_spec, (400.0, -5.0, 200.0),
                config=SynthesisConfig(max_ill=10, switch_count_range=(2, 3)),
                progress=lambda done, total, key: calls.append(key),
            )
        assert calls == []  # nothing ran

    def test_best_power_tie_breaks_on_frequency(self, specs):
        """Two frequencies yielding identical (power, switch count) points:
        best_power() must pick the lower frequency deterministically, not
        whichever dict insertion order all_points() happened to produce."""
        import dataclasses

        from repro.core.design_point import SynthesisResult

        core_spec, comm_spec = specs
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        base = sweep_frequencies(
            core_spec, comm_spec, (200.0,), config=cfg
        ).per_frequency[200.0]
        assert base.points
        # Forge a 400 MHz twin of every 200 MHz point: identical metrics
        # (power tie) but a different config frequency.
        twin = SynthesisResult(points=[
            dataclasses.replace(
                p, config=p.config.with_(frequency_mhz=400.0)
            )
            for p in base.points
        ])
        for order in ((200.0, base, 400.0, twin), (400.0, twin, 200.0, base)):
            sweep = FrequencySweepResult()
            sweep.per_frequency[order[0]] = order[1]
            sweep.per_frequency[order[2]] = order[3]
            assert sweep.best_power().config.frequency_mhz == 200.0

    def test_parallel_sweep_identical_to_serial(self, specs):
        core_spec, comm_spec = specs
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        freqs = (200.0, 400.0, 700.0)
        serial = sweep_frequencies(core_spec, comm_spec, freqs, config=cfg, jobs=1)
        parallel = sweep_frequencies(core_spec, comm_spec, freqs, config=cfg, jobs=2)
        assert serial.frequencies == parallel.frequencies
        for freq in serial.frequencies:
            s_points = serial.per_frequency[freq].points
            p_points = parallel.per_frequency[freq].points
            assert [design_point_to_dict(p) for p in s_points] == [
                design_point_to_dict(p) for p in p_points
            ]

    def test_empty_sweep_best_raises(self, specs):
        core_spec, comm_spec = specs
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        sweep = sweep_frequencies(core_spec, comm_spec, (10.0,), config=cfg)
        with pytest.raises(SynthesisError):
            sweep.best_power()


class TestWidthSweep:
    def test_results_per_width(self, specs):
        core_spec, comm_spec = specs
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        results = sweep_link_widths(core_spec, comm_spec, (16, 32, 64), config=cfg)
        assert set(results) == {16, 32, 64}
        for width, result in results.items():
            for p in result.points:
                assert p.config.link_width_bits == width

    def test_too_narrow_width_infeasible(self, specs):
        core_spec, comm_spec = specs
        # 2-bit links at 400 MHz: 100 MB/s capacity < the 400 MB/s flow.
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        results = sweep_link_widths(core_spec, comm_spec, (2,), config=cfg)
        assert not results[2].points

    def test_wire_energy_width_invariant(self, specs):
        """Moving the same bytes over wider links toggles the same wire
        capacitance: dynamic link power is (to first order) width-invariant,
        so 16- and 64-bit designs land in the same power ballpark."""
        core_spec, comm_spec = specs
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 2))
        results = sweep_link_widths(core_spec, comm_spec, (16, 64), config=cfg)
        if results[16].points and results[64].points:
            p16 = results[16].best_power()
            p64 = results[64].best_power()
            ratio = p64.metrics.link_power_mw / p16.metrics.link_power_mw
            assert 0.5 < ratio < 2.0

    def test_invalid_width_rejected(self, specs):
        core_spec, comm_spec = specs
        with pytest.raises(SynthesisError):
            sweep_link_widths(core_spec, comm_spec, (0,))
