"""The campaign service: queueing, backpressure, fairness, cancel, resume."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.campaign import CampaignService
from repro.campaign.journal import JobJournal
from repro.campaign.service import request_cancel, submit_file
from repro.errors import BackpressureError, CampaignError, CampaignSpecError


def sweep_spec(name: str, frequencies=(400, 800)) -> dict:
    """A fast, real campaign: d26_media with a tiny switch range."""
    return {
        "name": name, "kind": "sweep", "benchmark": "d26_media",
        "grid": {"frequencies_mhz": list(frequencies)},
        "config": {"switch_count_range": [3, 4]},
    }


def service(tmp_path, **kw) -> CampaignService:
    kw.setdefault("batch_size", 1)
    return CampaignService(tmp_path / "spool", **kw)


def journal_events(tmp_path):
    journal = JobJournal(tmp_path / "spool" / "journal.jsonl", writer=False)
    return [(r["event"], r.get("job")) for r in journal.iter_records()]


def test_submit_run_complete(tmp_path):
    with service(tmp_path) as svc:
        job_id = svc.submit(sweep_spec("one"))
        assert job_id == "job-0001"
        completed = svc.run_until_idle()
        assert completed == ["job-0001"]
    state = CampaignService.status(tmp_path / "spool")
    job = state.jobs["job-0001"]
    assert job.state == "done"
    assert job.done_tasks == job.total_tasks == 2
    assert job.digest
    # The result file exists and matches the journaled digest.
    import hashlib

    blob = (tmp_path / "spool" / "results" / "job-0001.pkl").read_bytes()
    assert hashlib.sha256(blob).hexdigest() == job.digest
    payloads = pickle.loads(blob)
    assert len(payloads) == 2


def test_invalid_spec_rejected_at_submit(tmp_path):
    with service(tmp_path) as svc:
        with pytest.raises(CampaignSpecError):
            svc.submit({"name": "x", "benchmark": "zzz"})
        assert svc.queue_depth == 0


def test_backpressure_is_structured_and_journaled(tmp_path):
    with service(tmp_path, max_queue=2) as svc:
        svc.submit(sweep_spec("a"))
        svc.submit(sweep_spec("b"))
        with pytest.raises(BackpressureError) as excinfo:
            svc.submit(sweep_spec("c"))
        exc = excinfo.value
        assert exc.queue_depth == 2
        assert exc.max_queue == 2
        assert exc.retry_after_s > 0
        # Never a silent drop: the rejection is journaled...
        state = CampaignService.status(tmp_path / "spool")
        assert state.rejected == 1
        # ...and in-flight jobs keep progressing regardless.
        assert svc.step() is True
        assert svc.run_until_idle() == ["job-0001", "job-0002"]
        # A slot is free again: the retry goes through.
        assert svc.submit(sweep_spec("c")) == "job-0003"


def test_round_robin_interleaves_jobs(tmp_path):
    """Per-job fairness: with batch_size=1, two 2-task jobs alternate
    instead of running back to back."""
    with service(tmp_path) as svc:
        svc.submit(sweep_spec("a"))
        svc.submit(sweep_spec("b", frequencies=(401, 801)))
        svc.run_until_idle()
    progressed = [
        job for event, job in journal_events(tmp_path)
        if event in ("progress", "done")
    ]
    assert progressed == ["job-0001", "job-0002", "job-0001", "job-0002"]


def test_small_job_not_starved_by_large_one(tmp_path):
    with service(tmp_path) as svc:
        svc.submit(sweep_spec("big", frequencies=(400, 500, 600, 700)))
        svc.submit(sweep_spec("small", frequencies=(800,)))
        svc.run_until_idle()
    done_order = [
        job for event, job in journal_events(tmp_path) if event == "done"
    ]
    # The 1-task job finishes on its first turn, long before the 4-task one.
    assert done_order == ["job-0002", "job-0001"]


def test_cancel_queued_job(tmp_path):
    with service(tmp_path) as svc:
        svc.submit(sweep_spec("a"))
        svc.submit(sweep_spec("b"))
        assert svc.cancel("job-0002") is True
        assert svc.cancel("job-0002") is False  # already gone
        assert svc.cancel("job-9999") is False
        assert svc.run_until_idle() == ["job-0001"]
    state = CampaignService.status(tmp_path / "spool")
    assert state.jobs["job-0002"].state == "cancelled"


def test_cancel_via_control_file(tmp_path):
    with service(tmp_path) as svc:
        svc.submit(sweep_spec("a"))
        request_cancel(svc.paths.root, "job-0001")
        assert svc.run_until_idle() == []
    state = CampaignService.status(tmp_path / "spool")
    assert state.jobs["job-0001"].state == "cancelled"


def test_inbox_accepts_valid_and_rejects_invalid(tmp_path):
    with service(tmp_path) as svc:
        good = tmp_path / "good.json"
        good.write_text(json.dumps(sweep_spec("inboxed")))
        submit_file(svc.paths.root, good)
        bad = svc.paths.inbox / "bad.json"
        bad.write_text(json.dumps({"benchmark": "zzz"}))
        accepted = svc.poll_inbox()
        assert accepted == ["job-0001"]
        assert list(svc.paths.inbox.iterdir()) == []
        rejected = sorted(p.name for p in svc.paths.rejected.iterdir())
        assert rejected == ["bad.json", "bad.json.error"]
        note = (svc.paths.rejected / "bad.json.error").read_text()
        assert "benchmark" in note


def test_submit_file_validates_client_side(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"benchmark": "zzz"}))
    with pytest.raises(CampaignSpecError):
        submit_file(tmp_path / "spool", bad)
    inbox = tmp_path / "spool" / "inbox"
    assert not inbox.exists() or list(inbox.iterdir()) == []


def test_backpressured_inbox_file_stays_for_retry(tmp_path):
    with service(tmp_path, max_queue=1) as svc:
        svc.submit(sweep_spec("first"))
        waiting = tmp_path / "waiting.json"
        waiting.write_text(json.dumps(sweep_spec("second")))
        submit_file(svc.paths.root, waiting)
        assert svc.poll_inbox() == []  # queue full: file left in place
        assert len(list(svc.paths.inbox.iterdir())) == 1
        svc.run_until_idle(poll_inbox=False)  # drain the first job...
        assert svc.poll_inbox() == ["job-0002"]  # ...then the retry lands
        svc.run_until_idle()
    state = CampaignService.status(tmp_path / "spool")
    assert state.jobs["job-0002"].state == "done"


def test_compile_failure_fails_the_job_not_the_service(tmp_path, monkeypatch):
    import repro.campaign.service as service_mod

    real_compile = service_mod.compile_campaign

    def compile_or_explode(spec, **kw):
        if spec.name == "doomed":
            raise CampaignError("no design point to simulate")
        return real_compile(spec, **kw)

    monkeypatch.setattr(service_mod, "compile_campaign", compile_or_explode)
    with service(tmp_path) as svc:
        svc.submit({**sweep_spec("doomed"), "name": "doomed"})
        svc.submit(sweep_spec("fine"))
        assert svc.run_until_idle() == ["job-0002"]
    state = CampaignService.status(tmp_path / "spool")
    assert state.jobs["job-0001"].state == "failed"
    assert state.jobs["job-0001"].error
    assert state.jobs["job-0002"].state == "done"


def test_refuses_incomplete_journal_without_resume(tmp_path):
    with service(tmp_path) as svc:
        svc.submit(sweep_spec("a"))
        # Close with the job still queued (simulates a crash-adjacent stop;
        # a real SIGKILL is covered by the chaos suite).
    with pytest.raises(CampaignError, match="incomplete"):
        service(tmp_path)
    # With resume, the queued job is picked up and finished.
    with service(tmp_path, resume=True) as svc:
        assert svc.run_until_idle() == ["job-0001"]


def test_resume_reuses_store_results(tmp_path):
    with service(tmp_path) as svc:
        svc.submit(sweep_spec("a"))
        assert svc.step() is True  # one task done, then "crash"
    with service(tmp_path, resume=True) as svc:
        hits_before = svc.store.hits
        assert svc.run_until_idle() == ["job-0001"]
        assert svc.store.hits > hits_before  # first task served from store


def test_status_is_readonly_while_service_runs(tmp_path):
    with service(tmp_path) as svc:
        svc.submit(sweep_spec("a"))
        state = CampaignService.status(tmp_path / "spool")
        assert state.jobs["job-0001"].state == "queued"
        assert svc.journal.is_writer  # the reader did not steal the lock


def test_serve_forever_idle_exit_and_drain(tmp_path):
    with service(tmp_path) as svc:
        svc.submit(sweep_spec("a"))
        svc.serve_forever(idle_exit_s=0.05, poll_s=0.01,
                          install_signals=False)
    events = [event for event, _ in journal_events(tmp_path)]
    assert events[-1] == "service-stop"
    assert "checkpoint" in events
    state = CampaignService.status(tmp_path / "spool")
    assert state.jobs["job-0001"].state == "done"


def test_bench_service_section():
    """The benchmark gate in miniature: sequential, concurrent and
    interrupted-then-resumed runs of the same campaigns lose nothing,
    duplicate nothing, and agree byte for byte."""
    from repro.engine.benchmark import _bench_service
    from repro.engine.profile import ProfileRecorder

    report = _bench_service(ProfileRecorder(), lambda _m: None)
    assert report["lost_jobs"] == 0
    assert report["duplicated_jobs"] == 0
    assert report["digests_identical"]
    assert report["jobs_submitted"] == 3
    assert report["tasks_total"] == 12


def test_bad_service_parameters(tmp_path):
    with pytest.raises(CampaignError, match="max_queue"):
        CampaignService(tmp_path / "s", max_queue=0)
    with pytest.raises(CampaignError, match="batch_size"):
        CampaignService(tmp_path / "s", batch_size=0)
