"""Content-addressed result store (repro.engine.store) + executor reuse.

Covers the store's own contracts (fingerprint stability, atomic entry IO,
corruption tolerance, eviction, verify/clear) and the executor integration:
warm-cache campaign results must be *bit-identical* to cold runs across
serial and parallel execution, and a killed-then-resumed campaign must
complete from the store with the same merged output as an uninterrupted
cold run.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import SynthesisConfig
from repro.core.frequency_sweep import sweep_frequencies
from repro.engine import ResultStore, fingerprint_task, run_tasks
from repro.engine.store import open_store
from repro.engine.tasks import BatchSimulationTask, SimulationTask, SynthesisTask
from repro.errors import StoreError

from _simtopo import contended_topology

FREQS = (400.0, 500.0, 600.0)
CONFIG = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))


def _sim_tasks(n=4, cycles=300, **overrides):
    """Cheap deterministic engine tasks: tiny wormhole simulations."""
    topo = contended_topology()
    return [
        SimulationTask(
            key=("sim", seed), topology=topo, seed=seed, cycles=cycles,
            warmup=0, **overrides,
        )
        for seed in range(n)
    ]


def _payload_bytes(results):
    return [pickle.dumps(r.result) for r in results]


class TestFingerprint:
    def test_stable_across_calls(self):
        a, b = _sim_tasks(1)[0], _sim_tasks(1)[0]
        assert fingerprint_task(a) == fingerprint_task(b)

    def test_key_and_label_fields_excluded(self):
        task = _sim_tasks(1)[0]
        import dataclasses

        relabeled = dataclasses.replace(task, key="something-else")
        assert fingerprint_task(task) == fingerprint_task(relabeled)

    def test_payload_fields_included(self):
        base, other = _sim_tasks(2)
        assert fingerprint_task(base) != fingerprint_task(other)

    def test_salt_changes_digest(self):
        task = _sim_tasks(1)[0]
        assert fingerprint_task(task, salt="a") != fingerprint_task(
            task, salt="b"
        )

    def test_synthesis_task_config_distinguishes(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        t1 = SynthesisTask(key=0, core_spec=core_spec, comm_spec=comm_spec,
                           config=CONFIG)
        t2 = SynthesisTask(key=0, core_spec=core_spec, comm_spec=comm_spec,
                           config=CONFIG.with_(frequency_mhz=500.0))
        assert fingerprint_task(t1) != fingerprint_task(t2)

    def test_results_invariant_knobs_excluded(self, tiny_specs):
        """floorplan_jobs only changes *how* the result is computed, never
        the result — runs differing only in it must share cache entries."""
        core_spec, comm_spec = tiny_specs
        base = CONFIG.with_(floorplanner="constrained", floorplan_restarts=2)
        t1 = SynthesisTask(key=0, core_spec=core_spec, comm_spec=comm_spec,
                           config=base.with_(floorplan_jobs=1))
        t2 = SynthesisTask(key=0, core_spec=core_spec, comm_spec=comm_spec,
                           config=base.with_(floorplan_jobs=4))
        assert fingerprint_task(t1) == fingerprint_task(t2)
        t3 = SynthesisTask(key=0, core_spec=core_spec, comm_spec=comm_spec,
                           config=base.with_(floorplan_restarts=3))
        assert fingerprint_task(t1) != fingerprint_task(t3)

    def test_int_enum_distinct_from_plain_int(self):
        import enum
        import hashlib

        from repro.engine.store import _feed

        class Level(enum.IntEnum):
            ONE = 1

        def digest(value):
            h = hashlib.sha256()
            _feed(h, value)
            return h.hexdigest()

        assert digest(Level.ONE) != digest(1)
        assert digest(Level.ONE) == digest(Level.ONE)

    def test_same_named_classes_different_modules_distinct(self):
        import dataclasses
        import hashlib

        from repro.engine.store import _feed

        a_cls = dataclasses.make_dataclass("Thing", [("x", int)])
        b_cls = dataclasses.make_dataclass("Thing", [("x", int)])
        a_cls.__module__ = "pkg_a"
        b_cls.__module__ = "pkg_b"

        def digest(value):
            h = hashlib.sha256()
            _feed(h, value)
            return h.hexdigest()

        assert digest(a_cls(x=1)) != digest(b_cls(x=1))

    def test_unfingerprintable_payload_raises(self):
        task = SimulationTask(key=0, topology=object())
        with pytest.raises(StoreError):
            fingerprint_task(task)

    def test_store_fingerprint_degrades_to_uncacheable(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.fingerprint(SimulationTask(key=0, topology=object())) is None

    def test_skip_tasks_uncacheable(self, tiny_specs, tmp_path):
        core_spec, comm_spec = tiny_specs
        task = SynthesisTask(key=0, core_spec=core_spec, comm_spec=comm_spec,
                             config=CONFIG, skip=True, skip_reason="infeasible")
        assert ResultStore(tmp_path).fingerprint(task) is None


class TestStoreIO:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        task = _sim_tasks(1)[0]
        fp = store.fingerprint(task)
        assert store.get(fp) is None
        assert store.put(fp, {"x": 1}, task_type="SimulationTask",
                         elapsed_s=0.25)
        entry = store.get(fp)
        assert entry.payload == {"x": 1}
        assert entry.task_type == "SimulationTask"
        assert entry.elapsed_s == 0.25
        assert store.hits == 1 and store.misses == 1

    def test_reopened_store_serves_entries(self, tmp_path):
        fp = ResultStore(tmp_path).fingerprint(_sim_tasks(1)[0])
        ResultStore(tmp_path).put(fp, [1, 2, 3])
        assert ResultStore(tmp_path).get(fp).payload == [1, 2, 3]

    def test_different_salt_misses(self, tmp_path):
        task = _sim_tasks(1)[0]
        store_a = ResultStore(tmp_path, salt="a")
        store_a.put(store_a.fingerprint(task), "A")
        store_b = ResultStore(tmp_path, salt="b")
        # Different salt -> different address entirely.
        assert store_b.get(store_b.fingerprint(task)) is None

    def test_corrupt_entry_is_a_miss_and_dropped(self, tmp_path):
        store = ResultStore(tmp_path)
        fp = store.fingerprint(_sim_tasks(1)[0])
        store.put(fp, "payload")
        path = store._path(fp)
        path.write_bytes(path.read_bytes()[:10])  # truncate mid-record
        assert store.get(fp) is None
        assert store.corrupt_dropped == 1
        assert not path.exists()

    def test_foreign_file_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        fp = store.fingerprint(_sim_tasks(1)[0])
        path = store._path(fp)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "a store record"}))
        assert store.get(fp) is None

    def test_verify_and_repair(self, tmp_path):
        store = ResultStore(tmp_path)
        tasks = _sim_tasks(3)
        fps = [store.fingerprint(t) for t in tasks]
        for fp in fps:
            store.put(fp, "ok")
        store._path(fps[0]).write_bytes(b"garbage")
        report = store.verify()
        assert (report.checked, report.ok, len(report.bad)) == (3, 2, 1)
        assert not report.clean
        repaired = store.verify(repair=True)
        assert repaired.removed == 1
        assert store.verify().clean
        assert store.stats().entries == 2

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        for task in _sim_tasks(3):
            store.put(store.fingerprint(task), "x")
        assert store.clear() == (3, 0)
        assert store.stats().entries == 0

    def test_unpicklable_payload_degrades_to_not_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        fp = store.fingerprint(_sim_tasks(1)[0])
        with open(tmp_path / "scratch", "w") as handle:
            assert store.put(fp, {"handle": handle}) is False
        assert store.get(fp) is None
        assert store.stats().entries == 0

    def test_inflight_temp_files_are_not_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        fp = store.fingerprint(_sim_tasks(1)[0])
        store.put(fp, "real")
        orphan = store._path(fp).parent / ".tmp-orphan.pkl"
        orphan.write_bytes(b"half-written")
        # Invisible to stats/verify/evict — never reported, never touched.
        assert store.stats().entries == 1
        assert store.verify().clean
        assert store.evict(max_bytes=10**9) == 0
        assert orphan.exists()
        # clear() sweeps orphans along with the entries.
        assert store.clear() == (1, 0)
        assert not orphan.exists()

    def test_eviction_drops_oldest_first(self, tmp_path):
        import os
        import time

        store = ResultStore(tmp_path)
        fps = [store.fingerprint(t) for t in _sim_tasks(4)]
        for i, fp in enumerate(fps):
            store.put(fp, "v" * 100)
            # Strictly increasing mtimes without sleeping.
            os.utime(store._path(fp), (i, i))
        sizes = sum(store._path(fp).stat().st_size for fp in fps)
        per_entry = sizes // 4
        removed = store.evict(max_bytes=2 * per_entry + 10)
        assert removed == 2
        assert store.get(fps[0]) is None and store.get(fps[1]) is None
        assert store.get(fps[2]) is not None and store.get(fps[3]) is not None

    def test_max_bytes_enforced_on_put(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=1)
        fps = [store.fingerprint(t) for t in _sim_tasks(2)]
        store.put(fps[0], "a")
        store.put(fps[1], "b")
        # A 1-byte budget keeps exactly the just-written entry — even when
        # both writes land in the same coarse-mtime tick, the put's own
        # entry is explicitly protected from its eviction pass.
        assert store.stats().entries == 1
        assert store.get(fps[1]) is not None

    def test_oversized_entry_never_wipes_the_store(self, tmp_path):
        import os

        store = ResultStore(tmp_path)
        fps = [store.fingerprint(t) for t in _sim_tasks(3)]
        for i, fp in enumerate(fps[:2]):
            store.put(fp, "small")
            os.utime(store._path(fp), (i, i))
        store.put(fps[2], "x" * 4096)  # newest, alone above the budget
        removed = store.evict(max_bytes=1024)
        # The two older entries go; the newest survives even though the
        # store remains over budget — never an empty store.
        assert removed == 2
        assert store.get(fps[2]) is not None

    def test_transient_open_failure_keeps_the_entry(
        self, tmp_path, monkeypatch
    ):
        import builtins

        store = ResultStore(tmp_path)
        fp = store.fingerprint(_sim_tasks(1)[0])
        store.put(fp, "precious")
        path = store._path(fp)
        real_open = builtins.open

        def flaky_open(file, *args, **kwargs):
            if str(file) == str(path):
                raise OSError(24, "Too many open files")
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", flaky_open)
        assert store.get(fp) is None  # a miss...
        monkeypatch.undo()
        assert store.corrupt_dropped == 0
        assert store.get(fp).payload == "precious"  # ...not a deletion

    def test_readonly_open_never_creates_or_probes(self, tmp_path):
        missing = tmp_path / "never-created"
        store = ResultStore(missing, readonly=True)
        assert store.stats().entries == 0
        assert store.verify().checked == 0
        assert not missing.exists()

    def test_invalid_root_raises_clear_error(self, tmp_path):
        as_file = tmp_path / "plain-file"
        as_file.write_text("not a directory")
        with pytest.raises(StoreError, match="not a directory"):
            ResultStore(as_file)
        with pytest.raises(StoreError, match="cannot create"):
            ResultStore(as_file / "sub")

    def test_open_store_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envstore"))
        store = open_store()
        assert store.root == tmp_path / "envstore"
        assert store.root.is_dir()


class TestExecutorIntegration:
    def test_warm_run_is_bit_identical_serial_and_parallel(self, tmp_path):
        tasks = _sim_tasks(4)
        baseline = run_tasks(tasks, jobs=1)
        store = ResultStore(tmp_path)
        cold = run_tasks(tasks, jobs=1, store=store)
        warm_serial = run_tasks(tasks, jobs=1, store=store)
        warm_parallel = run_tasks(tasks, jobs=2, store=store)
        assert _payload_bytes(baseline) == _payload_bytes(cold)
        assert _payload_bytes(cold) == _payload_bytes(warm_serial)
        assert _payload_bytes(cold) == _payload_bytes(warm_parallel)
        assert [r.cached for r in cold] == [False] * 4
        assert [r.cached for r in warm_serial] == [True] * 4
        assert [r.key for r in warm_parallel] == [t.key for t in tasks]

    def test_parallel_cold_run_populates_store(self, tmp_path):
        tasks = _sim_tasks(4)
        store = ResultStore(tmp_path)
        cold = run_tasks(tasks, jobs=2, store=store)
        assert store.stats().entries == 4
        warm = run_tasks(tasks, jobs=1, store=store)
        assert _payload_bytes(cold) == _payload_bytes(warm)
        assert all(r.cached for r in warm)

    def test_duplicate_keys_map_to_their_own_entries(self, tmp_path):
        a, b = _sim_tasks(2)
        import dataclasses

        b = dataclasses.replace(b, key=a.key)  # same label, different content
        store = ResultStore(tmp_path)
        cold = run_tasks([a, b], jobs=1, store=store)
        warm = run_tasks([a, b], jobs=1, store=store)
        assert all(r.cached for r in warm)
        assert _payload_bytes(cold) == _payload_bytes(warm)
        # Distinct content => distinct results survived the same label.
        assert pickle.dumps(warm[0].result) != pickle.dumps(warm[1].result)

    def test_progress_counts_hits_and_misses_once_each(self, tmp_path):
        tasks = _sim_tasks(4)
        store = ResultStore(tmp_path)
        run_tasks(tasks[:2], jobs=1, store=store)
        seen = []
        run_tasks(
            tasks, jobs=1, store=store,
            progress=lambda done, total, key: seen.append((done, total, key)),
        )
        assert [s[0] for s in seen] == [1, 2, 3, 4]
        assert all(s[1] == 4 for s in seen)
        assert sorted(s[2] for s in seen) == sorted(t.key for t in tasks)

    def test_errors_are_not_cached(self, tmp_path):
        bad = SimulationTask(key="bad", topology=contended_topology(),
                             cycles=100, warmup=0, scenario="no-such-scenario")
        store = ResultStore(tmp_path)
        results = run_tasks([bad], jobs=1, store=store, raise_errors=False)
        assert results[0].error is not None
        assert store.stats().entries == 0

    def test_interrupted_campaign_resumes_bit_identical(self, tmp_path):
        """Kill a campaign partway; the rerun completes from the store and
        merges byte-identically to an uninterrupted cold run."""
        tasks = _sim_tasks(6)
        cold = run_tasks(tasks, jobs=1)

        class Killed(Exception):
            pass

        def killer(done, total, key):
            if done == 3:
                raise Killed  # the process dies mid-campaign

        store = ResultStore(tmp_path)
        with pytest.raises(Killed):
            run_tasks(tasks, jobs=1, store=store, progress=killer)
        checkpointed = store.stats().entries
        assert 0 < checkpointed < len(tasks)

        resumed = run_tasks(tasks, jobs=1, store=store)
        assert _payload_bytes(resumed) == _payload_bytes(cold)
        assert sum(r.cached for r in resumed) == checkpointed

    def test_interrupted_parallel_campaign_resumes(self, tmp_path):
        tasks = _sim_tasks(6)
        cold = run_tasks(tasks, jobs=1)

        class Killed(Exception):
            pass

        def killer(done, total, key):
            if done == 2:
                raise Killed

        store = ResultStore(tmp_path)
        with pytest.raises(Killed):
            run_tasks(tasks, jobs=2, store=store, progress=killer)
        # Whatever completed before the kill is on disk; the resume — this
        # time in parallel — finishes the rest and merges identically.
        resumed = run_tasks(tasks, jobs=2, store=store)
        assert _payload_bytes(resumed) == _payload_bytes(cold)
        assert store.stats().entries == len(tasks)


def _batch_sim_task(seeds, key="batch", cycles=300):
    return BatchSimulationTask(
        key=key, topology=contended_topology(), seeds=tuple(seeds),
        cycles=cycles, warmup=0,
    )


class TestBatchTaskStore:
    """A batched run is addressed as the *set* of its per-replication
    runs: warm caches and resume stay bit-identical with batching on or
    off, and chunking never appears in any store address."""

    def test_expansion_addresses_are_the_solo_addresses(self):
        batch = _batch_sim_task(range(4))
        solo_fps = [fingerprint_task(t) for t in _sim_tasks(4)]
        assert [
            fingerprint_task(s) for s in batch.expand_for_store()
        ] == solo_fps
        # ... regardless of the batch's own key or chunking.
        import dataclasses

        rekeyed = dataclasses.replace(batch, key="other-label")
        assert [
            fingerprint_task(s) for s in rekeyed.expand_for_store()
        ] == solo_fps
        narrowed = batch.narrow((1, 3))
        assert [
            fingerprint_task(s) for s in narrowed.expand_for_store()
        ] == [solo_fps[1], solo_fps[3]]

    def test_batch_warm_over_cold_solo_store(self, tmp_path):
        solo_tasks = _sim_tasks(4)
        store = ResultStore(tmp_path)
        cold = run_tasks(solo_tasks, jobs=1, store=store)
        warm_store = ResultStore(tmp_path)
        warm = run_tasks([_batch_sim_task(range(4))], jobs=1,
                         store=warm_store)
        assert warm[0].cached
        assert warm_store.hits == 4 and warm_store.misses == 0
        assert [pickle.dumps(r) for r in warm[0].result] == _payload_bytes(
            cold
        )

    def test_solo_warm_over_cold_batch_store(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_tasks([_batch_sim_task(range(4))], jobs=1, store=store)
        assert not cold[0].cached
        assert store.stats().entries == 4
        # The batch checkpointed under SimulationTask, not its own type.
        assert store.stats().by_task_type == {"SimulationTask": 4}
        warm_store = ResultStore(tmp_path)
        warm = run_tasks(_sim_tasks(4), jobs=1, store=warm_store)
        assert all(r.cached for r in warm)
        assert _payload_bytes(warm) == [
            pickle.dumps(r) for r in cold[0].result
        ]

    def test_partial_warm_batch_narrows_to_the_misses(self, tmp_path):
        solo_tasks = _sim_tasks(4)
        store = ResultStore(tmp_path)
        run_tasks([solo_tasks[1], solo_tasks[3]], jobs=1, store=store)
        mid_store = ResultStore(tmp_path)
        mixed = run_tasks([_batch_sim_task(range(4))], jobs=1,
                          store=mid_store)
        assert not mixed[0].cached  # two replications were computed...
        assert mid_store.hits == 2  # ...two replayed, merged in seed order
        assert [pickle.dumps(r) for r in mixed[0].result] == _payload_bytes(
            run_tasks(solo_tasks, jobs=1)
        )
        warm_store = ResultStore(tmp_path)
        warm = run_tasks([_batch_sim_task(range(4))], jobs=1,
                         store=warm_store)
        assert warm[0].cached and warm_store.hits == 4

    def test_killed_mid_batch_campaign_resumes(self, tmp_path):
        """Kill a batched campaign between chunks: completed chunks are on
        disk replication-by-replication; the resume replays them and only
        computes the unfinished chunk, merging bit-identically."""
        chunks = [_batch_sim_task(range(0, 3), key="chunk0"),
                  _batch_sim_task(range(3, 6), key="chunk1")]
        cold_solo = run_tasks(_sim_tasks(6), jobs=1)

        class Killed(Exception):
            pass

        def killer(done, total, key):
            if done == 1:
                raise Killed

        store = ResultStore(tmp_path)
        with pytest.raises(Killed):
            run_tasks(chunks, jobs=1, store=store, progress=killer)
        checkpointed = store.stats().entries
        assert 0 < checkpointed < 6  # one chunk's replications, not both

        resume_store = ResultStore(tmp_path)
        resumed = run_tasks(chunks, jobs=1, store=resume_store)
        flat = [r for chunk in resumed for r in chunk.result]
        assert [pickle.dumps(r) for r in flat] == _payload_bytes(cold_solo)
        assert resumed[0].cached and not resumed[1].cached
        assert resume_store.hits == checkpointed
        assert ResultStore(tmp_path).stats().entries == 6

    def test_errored_batch_is_not_cached(self, tmp_path):
        bad = BatchSimulationTask(
            key="bad", topology=contended_topology(), seeds=(0, 1),
            cycles=100, warmup=0, scenario="no-such-scenario",
        )
        store = ResultStore(tmp_path)
        results = run_tasks([bad], jobs=1, store=store, raise_errors=False)
        assert results[0].error is not None
        assert store.stats().entries == 0


class TestCampaignDifferential:
    """Warm-cache campaign outputs must be bit-identical to cold runs."""

    def test_frequency_sweep_cold_warm_serial_parallel(
        self, tiny_specs, tmp_path
    ):
        core_spec, comm_spec = tiny_specs
        baseline = sweep_frequencies(
            core_spec, comm_spec, FREQS, config=CONFIG, jobs=1
        )
        store = ResultStore(tmp_path)
        cold = sweep_frequencies(
            core_spec, comm_spec, FREQS, config=CONFIG, jobs=1, store=store
        )
        warm_serial = sweep_frequencies(
            core_spec, comm_spec, FREQS, config=CONFIG, jobs=1, store=store
        )
        warm_parallel = sweep_frequencies(
            core_spec, comm_spec, FREQS, config=CONFIG, jobs=2, store=store
        )
        # Compare per-frequency result blobs: whole-dict pickles encode
        # object sharing *across* independently computed/unpickled results,
        # which is representation, not content.
        blobs = [
            tuple(pickle.dumps(s.per_frequency[f]) for f in s.frequencies)
            for s in (baseline, cold, warm_serial, warm_parallel)
        ]
        assert len(set(blobs)) == 1
        assert (
            warm_serial.best_power().total_power_mw
            == baseline.best_power().total_power_mw
        )

    def test_simulation_campaign_cold_warm_serial_parallel(self, tmp_path):
        from repro.experiments.simulation_validation import (
            run_simulation_validation,
        )

        kwargs = dict(
            benchmark="d26_media",
            injection_scales=(0.1, 0.5),
            cycles=1_500,
            warmup=150,
            config=SynthesisConfig(max_ill=25, switch_count_range=(3, 5)),
            scenarios=("bernoulli", "bursty"),
            seeds=(0, 1),
        )
        baseline = run_simulation_validation(jobs=1, **kwargs)
        store = ResultStore(tmp_path)
        cold = run_simulation_validation(jobs=1, store=store, **kwargs)
        warm = run_simulation_validation(jobs=1, store=store, **kwargs)
        warm_parallel = run_simulation_validation(jobs=2, store=store, **kwargs)
        blobs = [
            pickle.dumps(t.rows)
            for t in (baseline, cold, warm, warm_parallel)
        ]
        assert len(set(blobs)) == 1
        # The synthesis itself was checkpointed too: 8 sim runs + 1 synth.
        assert store.stats().by_task_type == {
            "SimulationTask": 8, "SynthesisTask": 1,
        }

    def test_floorplan_multistart_store_reuse(self, tmp_path):
        from repro.floorplan.annealer import anneal_floorplan

        widths = [1.0, 1.2, 0.8, 1.5, 1.1, 0.9]
        heights = [1.0, 0.7, 1.3, 0.8, 1.2, 1.0]
        nets = {(0, 1): 2.0, (2, 3): 1.0, (4, 5): 3.0, (0, 5): 1.5}
        kwargs = dict(wirelength_weight=1.0, seed=3, moves=150, restarts=3)
        baseline = anneal_floorplan(widths, heights, nets, **kwargs)
        store = ResultStore(tmp_path)
        cold = anneal_floorplan(widths, heights, nets, store=store, **kwargs)
        warm = anneal_floorplan(widths, heights, nets, store=store, **kwargs)
        assert pickle.dumps(cold) == pickle.dumps(baseline)
        assert pickle.dumps(warm) == pickle.dumps(baseline)
        assert store.stats().by_task_type == {"FloorplanTask": 3}
        assert store.hits == 3
