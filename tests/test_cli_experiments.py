"""CLI experiment sub-command coverage (repro.cli, cheap experiments only).

The heavier experiment ids are exercised by the benchmark harness; here we
check the CLI wiring for the ids that complete quickly in-process (fig1 is
model-only; fig13 reuses the process-wide synthesis cache).
"""

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.slow


class TestParser:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["synth", "--benchmark", "d26_media"])
        assert args.command == "synth"
        args = parser.parse_args(["experiment", "table1"])
        assert args.command == "experiment" and args.id == "table1"
        args = parser.parse_args(["benchmarks"])
        assert args.command == "benchmarks"

    def test_synth_requires_source(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["synth"])

    def test_cores_and_benchmark_mutually_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["synth", "--benchmark", "x", "--cores", "y.txt"]
            )


class TestExperimentIds:
    def test_fig13_runs(self, capsys):
        assert main(["experiment", "fig13"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 13" in out
        assert "sw0" in out

    def test_fig14_runs(self, capsys):
        assert main(["experiment", "fig14"]) == 0
        assert "Fig. 14" in capsys.readouterr().out

    def test_fig12_runs(self, capsys):
        assert main(["experiment", "fig12"]) == 0
        assert "wire-length" in capsys.readouterr().out

    def test_fig18_runs(self, capsys):
        assert main(["experiment", "fig18"]) == 0
        assert "die area" in capsys.readouterr().out

    def test_all_ids_known(self, capsys):
        # Every documented id resolves to a runner (no typos in the table).
        for exp_id in ("fig1", "fig10", "fig11", "fig12", "fig13", "fig14",
                       "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
                       "fig21", "fig22", "fig23", "table1"):
            # Only check id resolution, not execution, for the heavy ones.
            from repro.cli import _cmd_experiment  # noqa: F401
        assert main(["experiment", "nonsense"]) == 1


class TestSynthExportFlags:
    def test_export_files_written(self, tmp_path, capsys, tiny_specs):
        from repro.spec.io import save_comm_spec_text, save_core_spec_text

        core_spec, comm_spec = tiny_specs
        cores = tmp_path / "c.txt"
        comm = tmp_path / "f.txt"
        save_core_spec_text(core_spec, cores)
        save_comm_spec_text(comm_spec, comm)
        json_out = tmp_path / "design.json"
        dot_out = tmp_path / "topo.dot"
        rc = main([
            "synth", "--cores", str(cores), "--comm", str(comm),
            "--max-ill", "10", "--switches", "2:2",
            "--verify",
            "--export-json", str(json_out),
            "--export-dot", str(dot_out),
        ])
        assert rc == 0
        assert json_out.exists() and dot_out.exists()
        out = capsys.readouterr().out
        assert "PASS" in out
