"""PG / SPG / LPG builders (repro.core.partition_graphs, Defs. 3-5, Eq. 1)."""

import pytest

from repro.core.partition_graphs import (
    build_lpg,
    build_pg,
    build_spg,
    edge_weight,
)
from repro.errors import SpecError
from repro.graphs.comm_graph import build_comm_graph
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec


def _graph():
    cores = CoreSpec(cores=[
        Core("A", 1, 1, 0, 0, 0),
        Core("B", 1, 1, 2, 0, 0),
        Core("C", 1, 1, 0, 0, 1),
        Core("D", 1, 1, 2, 0, 1),
    ])
    comm = CommSpec(flows=[
        TrafficFlow("A", "B", 400, 8),    # intra-layer 0
        TrafficFlow("A", "C", 200, 4),    # inter-layer
        TrafficFlow("C", "D", 100, 10),   # intra-layer 1
    ])
    return build_comm_graph(cores, comm)


class TestEdgeWeight:
    def test_alpha_one_is_bandwidth_only(self):
        w = edge_weight(200, 8, 400, 4, alpha=1.0)
        assert w == pytest.approx(0.5)

    def test_alpha_zero_is_latency_only(self):
        w = edge_weight(200, 8, 400, 4, alpha=0.0)
        assert w == pytest.approx(0.5)

    def test_blend(self):
        w = edge_weight(400, 4, 400, 4, alpha=0.7)
        assert w == pytest.approx(1.0)  # both terms maximal

    def test_bad_inputs(self):
        with pytest.raises(SpecError):
            edge_weight(1, 1, 0, 1, 0.5)
        with pytest.raises(SpecError):
            edge_weight(1, 0, 1, 1, 0.5)


class TestPG:
    def test_pg_has_all_comm_edges(self):
        g = _graph()
        pg = build_pg(g, alpha=1.0)
        assert set(pg) == {(0, 1), (0, 2), (2, 3)}

    def test_pg_weights_normalised(self):
        g = _graph()
        pg = build_pg(g, alpha=1.0)
        assert pg[(0, 1)] == pytest.approx(1.0)   # max bandwidth flow
        assert pg[(0, 2)] == pytest.approx(0.5)
        assert pg[(2, 3)] == pytest.approx(0.25)

    def test_tightest_latency_dominates_at_alpha_zero(self):
        g = _graph()
        pg = build_pg(g, alpha=0.0)
        assert pg[(0, 2)] == pytest.approx(1.0)   # lat 4 == min_lat


class TestSPG:
    def test_interlayer_edges_scaled_down(self):
        g = _graph()
        pg = build_pg(g, alpha=1.0)
        spg = build_spg(g, alpha=1.0, theta=10.0, theta_max=15.0)
        assert spg[(0, 2)] == pytest.approx(pg[(0, 2)] / 10.0)
        # Intra-layer PG edges unchanged.
        assert spg[(0, 1)] == pytest.approx(pg[(0, 1)])

    def test_extra_intra_layer_edges_added(self):
        g = _graph()
        spg = build_spg(g, alpha=1.0, theta=10.0, theta_max=15.0)
        # (1, 3)? different layers: no. (B=1, D=3). (1, 0) exists. New edge
        # must appear between non-communicating same-layer pairs: (2, 3)
        # communicates, so the only candidate pair in layer 1 is none;
        # layer 0 pair (0,1) communicates too. Use a graph with such a pair:
        cores = CoreSpec(cores=[
            Core("A", 1, 1, 0, 0, 0),
            Core("B", 1, 1, 2, 0, 0),
            Core("C", 1, 1, 4, 0, 0),
            Core("D", 1, 1, 0, 0, 1),
        ])
        comm = CommSpec(flows=[
            TrafficFlow("A", "B", 400, 8),
            TrafficFlow("C", "D", 100, 8),
        ])
        from repro.graphs.comm_graph import build_comm_graph

        g2 = build_comm_graph(cores, comm)
        spg2 = build_spg(g2, alpha=1.0, theta=10.0, theta_max=15.0)
        # A-C and B-C are same-layer non-communicating pairs.
        max_wt = 1.0  # A->B weight
        expected = 10.0 * max_wt / (10.0 * 15.0)
        assert spg2[(0, 2)] == pytest.approx(expected)
        assert spg2[(1, 2)] == pytest.approx(expected)

    def test_extra_edges_at_most_tenth_of_max(self):
        g = _graph()
        for theta in (1.0, 7.0, 15.0):
            spg = build_spg(g, alpha=1.0, theta=theta, theta_max=15.0)
            pg = build_pg(g, alpha=1.0)
            max_wt = max(pg.values())
            extra = theta * max_wt / (10.0 * 15.0)
            assert extra <= max_wt / 10.0 + 1e-12

    def test_invalid_theta(self):
        g = _graph()
        with pytest.raises(SpecError):
            build_spg(g, 1.0, theta=0.0, theta_max=15.0)
        with pytest.raises(SpecError):
            build_spg(g, 1.0, theta=20.0, theta_max=15.0)


class TestLPG:
    def test_members_are_layer_cores(self):
        g = _graph()
        members, _ = build_lpg(g, 0, alpha=1.0)
        assert members == [0, 1]
        members1, _ = build_lpg(g, 1, alpha=1.0)
        assert members1 == [2, 3]

    def test_interlayer_flows_ignored(self):
        g = _graph()
        members, weights = build_lpg(g, 0, alpha=1.0)
        # Only the A->B edge survives, in local indices.
        assert (0, 1) in weights
        assert all(k == (0, 1) for k in weights)

    def test_isolated_vertices_get_low_weight_edges(self):
        cores = CoreSpec(cores=[
            Core("A", 1, 1, 0, 0, 0),
            Core("B", 1, 1, 2, 0, 0),
            Core("C", 1, 1, 4, 0, 0),
        ])
        comm = CommSpec(flows=[TrafficFlow("A", "B", 100, 8)])
        from repro.graphs.comm_graph import build_comm_graph

        g = build_comm_graph(cores, comm)
        members, weights = build_lpg(g, 0, alpha=1.0)
        # C (local 2) is isolated: low-weight edges to locals 0 and 1.
        assert (0, 2) in weights and (1, 2) in weights
        assert weights[(0, 2)] < weights[(0, 1)] / 1000

    def test_empty_layer(self):
        g = _graph()
        members, weights = build_lpg(g, 5, alpha=1.0)
        assert members == [] and weights == {}
