"""Chaos suite: engine failure semantics under deterministic fault injection.

Every recovery path the supervision layer (:mod:`repro.engine.supervise`)
claims is executed here with injected faults (:mod:`repro.engine.faults`):

* the fault matrix — {serial, parallel} x {transient failure, worker
  crash, timeout} x {with store, without} — asserting merge order,
  monotonic progress counts and byte-identical survivor results;
* retry policy schedules, filtering and validation;
* poison-task attribution (including innocent bystanders in a chunk);
* graceful Ctrl-C with a hung worker pending;
* a killed-then-resumed store-backed campaign merging bit-identically to
  a clean cold run.

Cheap :class:`~repro.engine.tasks.FloorplanTask` bodies (a few dozen
annealing moves) keep every leg fast; the faults, pool breaks and
deadlines are real.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from pathlib import Path

import pytest

from repro.engine import (
    FaultPlan,
    FaultSpec,
    FaultyTask,
    RetryPolicy,
    inject_faults,
    run_tasks,
)
from repro.engine.faults import (
    SITES_ENV,
    TransientFaultError,
    WorkerCrashError,
    arm_sites,
    maybe_fire,
    reset_sites,
    site_activations,
    unwrap_task,
)
from repro.engine.store import ResultStore, fingerprint_task
from repro.engine.supervise import (
    Supervision,
    _RemoteTraceback,
    _hard_stop,
    _quarantined_result,
    _timeout_result,
    attach_remote_traceback,
    pool_context,
)
from repro.engine.tasks import FloorplanTask, run_task
from repro.errors import EngineError, TaskQuarantinedError, TaskTimeoutError
from repro.floorplan.sequence_pair import SequencePair

N_TASKS = 6
FAULT_INDEX = 2


def _tasks(n: int = N_TASKS, moves: int = 40):
    """Cheap, deterministic, mutually distinct engine tasks."""
    sp = SequencePair.grid(4)
    return [
        FloorplanTask(
            key=f"restart-{i}", widths=(2.0, 3.0, 1.5, 2.5),
            heights=(1.0, 2.0, 1.2, 0.8), seed=9, moves=moves,
            initial_sp=sp, restart=i,
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def clean_results():
    """Fault-free serial baseline every faulted run must agree with."""
    return run_tasks(_tasks(), jobs=1)


def _store_entries(store_dir) -> int:
    return len(list(Path(store_dir).rglob("*.pkl")))


class TestFaultMatrix:
    """{serial, parallel} x {transient, crash, timeout} x {store, no store}."""

    @pytest.mark.parametrize("with_store", [False, True],
                             ids=["nostore", "store"])
    @pytest.mark.parametrize("kind", ["transient", "crash", "timeout"])
    @pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "parallel"])
    def test_matrix(self, tmp_path, clean_results, jobs, kind, with_store):
        tasks = _tasks()
        parallel = jobs > 1
        if kind == "transient":
            spec = FaultSpec("transient", times=1)
        elif kind == "crash":
            spec = FaultSpec("crash", times=-1)  # a genuine poison task
        else:
            # Parallel: a hang far past the deadline (killed at ~0.5s).
            # Serial: a short delay — the serial path runs tasks in the
            # caller's process and *cannot* preempt them, so deadlines are
            # documented as unenforced there and the task just finishes.
            spec = FaultSpec(
                "delay", times=-1, delay_s=5.0 if parallel else 0.05
            )
        plan = FaultPlan(
            tmp_path / "faults", {FAULT_INDEX: spec}, count_all=True
        )
        faulty = inject_faults(tasks, plan)
        store = ResultStore(tmp_path / "store") if with_store else None

        progress_calls = []
        results = run_tasks(
            faulty, jobs=jobs, store=store,
            progress=lambda done, total, key: progress_calls.append(
                (done, total, key)
            ),
            raise_errors=False, on_error="quarantine",
            retry=RetryPolicy(max_retries=2) if kind == "transient" else None,
            task_timeout_s=0.5 if kind == "timeout" else None,
        )

        # Merge order is submission order, faults or not.
        assert [r.key for r in results] == [t.key for t in tasks]
        # Progress counts are monotonic and contiguous to the total.
        assert [done for done, _t, _k in progress_calls] == list(
            range(1, len(tasks) + 1)
        )
        assert all(total == len(tasks) for _d, total, _k in progress_calls)

        # Expected casualty (if any) and its structured error.
        fault_result = results[FAULT_INDEX]
        if kind == "transient":
            assert fault_result.error is None
            if not fault_result.cached:
                assert fault_result.attempts == 2
            survivors = set(range(len(tasks)))
        elif kind == "crash" and not parallel:
            # Serial path: the harness raises instead of killing the runner.
            assert isinstance(fault_result.error, WorkerCrashError)
            survivors = set(range(len(tasks))) - {FAULT_INDEX}
        elif kind == "crash":
            assert isinstance(fault_result.error, TaskQuarantinedError)
            assert fault_result.error.reason == "crash"
            assert fault_result.attempts == 2  # pool attempt + solo attempt
            survivors = set(range(len(tasks))) - {FAULT_INDEX}
        elif kind == "timeout" and not parallel:
            assert fault_result.error is None  # deadlines need a pool
            survivors = set(range(len(tasks)))
        else:
            assert isinstance(fault_result.error, TaskTimeoutError)
            assert fault_result.error.timeout_s == 0.5
            survivors = set(range(len(tasks))) - {FAULT_INDEX}

        # Every survivor is byte-identical to the fault-free baseline.
        for i in survivors:
            assert results[i].error is None
            assert pickle.dumps(results[i].result) == pickle.dumps(
                clean_results[i].result
            )

        # No unfaulted task re-runs on the deterministic paths. After a
        # pool break / kill a bystander's first attempt may have died
        # mid-run and been legitimately re-attempted, so the parallel
        # crash/timeout legs only bound the count from below.
        for i in survivors - {FAULT_INDEX}:
            if parallel and kind in ("crash", "timeout"):
                assert plan.activations(i) >= 1
            else:
                assert plan.activations(i) == 1

        if store is not None:
            # Failed / timed-out / quarantined results are never cached.
            ok = sum(1 for r in results if r.error is None)
            assert _store_entries(tmp_path / "store") == ok
            # A clean rerun against the same store serves every survivor
            # from disk and merges identically to the fault-free baseline.
            rerun = run_tasks(tasks, jobs=1, store=store)
            assert [r.cached for r in rerun] == [
                i in survivors for i in range(len(tasks))
            ]
            assert pickle.dumps([r.result for r in rerun]) == pickle.dumps(
                [r.result for r in clean_results]
            )


class TestRetryPolicy:
    def test_deterministic_backoff_schedule(self):
        policy = RetryPolicy(
            max_retries=5, backoff_s=0.5, backoff_factor=3.0,
            max_backoff_s=2.0,
        )
        assert [policy.delay_s(n) for n in (1, 2, 3, 4)] == [
            0.5, 1.5, 2.0, 2.0  # capped at max_backoff_s
        ]
        assert RetryPolicy(backoff_s=0.0).delay_s(1) == 0.0

    def test_injected_sleep_records_backoff(self, tmp_path):
        recorded = []
        policy = RetryPolicy(
            max_retries=2, backoff_s=0.25, backoff_factor=2.0,
            sleep=recorded.append,
        )
        plan = FaultPlan(
            tmp_path, {0: FaultSpec("transient", times=2)}
        )
        [task] = inject_faults(_tasks(1), plan)
        result = run_task(task, policy)
        assert result.error is None
        assert result.attempts == 3
        assert recorded == [0.25, 0.5]

    def test_retry_on_filters_error_classes(self, tmp_path):
        policy = RetryPolicy(max_retries=3, retry_on=(OSError,))
        plan = FaultPlan(tmp_path, {0: FaultSpec("transient", times=1)})
        [task] = inject_faults(_tasks(1), plan)
        result = run_task(task, policy)
        assert isinstance(result.error, TransientFaultError)
        assert result.attempts == 1  # not an OSError: no retry spent

    def test_supervision_errors_never_retried(self):
        policy = RetryPolicy(max_retries=3)
        assert policy.should_retry(ValueError("x"))
        assert not policy.should_retry(TaskTimeoutError("t"))
        assert not policy.should_retry(TaskQuarantinedError("q"))

    def test_validation(self):
        with pytest.raises(EngineError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(EngineError, match="backoff_s"):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(EngineError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(EngineError, match="max_backoff_s"):
            RetryPolicy(max_backoff_s=-1.0)

    def test_run_tasks_knob_validation(self):
        tasks = _tasks(2)
        with pytest.raises(EngineError, match="on_error"):
            run_tasks(tasks, on_error="explode")
        with pytest.raises(EngineError, match="task_timeout_s"):
            run_tasks(tasks, task_timeout_s=0.0)
        with pytest.raises(EngineError, match="max_pool_restarts"):
            run_tasks(tasks, max_pool_restarts=-1)


class TestFaultPlan:
    def test_seeded_plans_are_reproducible(self, tmp_path):
        a = FaultPlan.seeded(tmp_path / "a", 50, seed=7, rate=0.3)
        b = FaultPlan.seeded(tmp_path / "b", 50, seed=7, rate=0.3)
        c = FaultPlan.seeded(tmp_path / "c", 50, seed=8, rate=0.3)
        assert a.faults == b.faults
        assert a.faults != c.faults
        assert 0 < len(a.faults) < 50

    def test_wrap_preserves_keys_and_fingerprints(self, tmp_path):
        tasks = _tasks(3)
        plan = FaultPlan(tmp_path, {1: FaultSpec("transient")})
        wrapped = inject_faults(tasks, plan)
        assert isinstance(wrapped[1], FaultyTask)
        assert wrapped[0] is tasks[0] and wrapped[2] is tasks[2]
        assert [w.key for w in wrapped] == [t.key for t in tasks]
        # The wrapper shares the wrapped task's content address, so a
        # fault-injected campaign shares checkpoints with a clean one.
        assert fingerprint_task(wrapped[1]) == fingerprint_task(tasks[1])
        assert unwrap_task(wrapped[1]) is tasks[1]
        assert unwrap_task(tasks[0]) is tasks[0]

    def test_reset_rearms_counters(self, tmp_path):
        plan = FaultPlan(tmp_path, {0: FaultSpec("transient", times=1)})
        [task] = inject_faults(_tasks(1), plan)
        run_task(task, RetryPolicy(max_retries=1))
        assert plan.activations(0) == 2
        plan.reset()
        assert plan.activations(0) == 0

    def test_validation(self, tmp_path):
        with pytest.raises(EngineError, match="kind"):
            FaultSpec("meltdown")
        with pytest.raises(EngineError, match="times"):
            FaultSpec("transient", times=-2)
        with pytest.raises(EngineError, match="delay_s"):
            FaultSpec("delay", delay_s=-1.0)
        with pytest.raises(EngineError, match="index"):
            FaultPlan(tmp_path, {-1: FaultSpec("transient")})
        with pytest.raises(EngineError, match="FaultSpec"):
            FaultPlan(tmp_path, {0: "crash"})
        with pytest.raises(EngineError, match="rate"):
            FaultPlan.seeded(tmp_path, 10, seed=0, rate=1.5)


class TestQuarantine:
    def test_on_error_raise_surfaces_quarantine(self, tmp_path):
        plan = FaultPlan(tmp_path, {1: FaultSpec("crash", times=-1)})
        faulty = inject_faults(_tasks(4), plan)
        with pytest.raises(TaskQuarantinedError) as excinfo:
            run_tasks(faulty, jobs=2)
        assert excinfo.value.key == "restart-1"
        assert excinfo.value.attempts == 2
        assert excinfo.value.reason == "crash"

    def test_on_error_raise_surfaces_timeout(self, tmp_path):
        plan = FaultPlan(
            tmp_path, {1: FaultSpec("delay", times=-1, delay_s=5.0)}
        )
        faulty = inject_faults(_tasks(4), plan)
        with pytest.raises(TaskTimeoutError) as excinfo:
            run_tasks(faulty, jobs=2, task_timeout_s=0.5)
        assert excinfo.value.key == "restart-1"

    def test_chunk_bystander_acquitted(self, tmp_path, clean_results):
        # chunk_size=2 puts an innocent task in the crashed chunk: the
        # attribution re-run must convict only the crasher and keep the
        # bystander's solo result.
        plan = FaultPlan(tmp_path, {0: FaultSpec("crash", times=-1)})
        faulty = inject_faults(_tasks(), plan)
        results = run_tasks(
            faulty, jobs=2, chunk_size=2, on_error="quarantine",
            raise_errors=False,
        )
        assert isinstance(results[0].error, TaskQuarantinedError)
        quarantined = [r for r in results if r.error is not None]
        assert len(quarantined) == 1
        bystander = results[1]  # shared the crasher's chunk
        assert bystander.error is None
        assert bystander.attempts == 2  # crashed pool attempt + solo run
        assert pickle.dumps(bystander.result) == pickle.dumps(
            clean_results[1].result
        )

    def test_pool_restart_budget_exhaustion(self, tmp_path):
        # Two persistent crashers with a zero-restart budget: the first
        # break spends the (empty) budget and everything still pending is
        # quarantined as budget-exhausted rather than waited on. Exactly
        # which tasks completed before the break is timing-dependent, so
        # the assertions are structural.
        plan = FaultPlan(tmp_path, {
            0: FaultSpec("crash", times=-1),
            3: FaultSpec("crash", times=-1),
        })
        faulty = inject_faults(_tasks(), plan)
        results = run_tasks(
            faulty, jobs=2, on_error="quarantine", raise_errors=False,
            max_pool_restarts=0,
        )
        assert [r.key for r in results] == [t.key for t in _tasks()]
        errors = [r.error for r in results if r.error is not None]
        assert errors, "at least the first crasher must be quarantined"
        assert all(isinstance(e, TaskQuarantinedError) for e in errors)
        reasons = {e.reason for e in errors}
        assert reasons <= {"crash", "pool restart budget exhausted"}

    def test_supervision_gate_semantics(self):
        sup = Supervision(on_error="quarantine")
        assert not sup.should_raise(TaskTimeoutError("t"))
        assert not sup.should_raise(TaskQuarantinedError("q"))
        assert sup.should_raise(ValueError("ordinary errors still raise"))
        default = Supervision()
        assert default.should_raise(TaskTimeoutError("t"))


class TestRemoteTraceback:
    def test_reraised_error_chains_worker_traceback(self, tmp_path):
        plan = FaultPlan(tmp_path, {1: FaultSpec("transient", times=-1)})
        faulty = inject_faults(_tasks(4), plan)
        with pytest.raises(TransientFaultError) as excinfo:
            run_tasks(faulty, jobs=2)
        cause = excinfo.value.__cause__
        assert cause is not None
        # The chained cause carries the worker-side raise site.
        assert "TransientFaultError" in str(cause)
        assert "activate_fault" in str(cause)

    def test_result_records_traceback_text(self, tmp_path):
        plan = FaultPlan(tmp_path, {1: FaultSpec("transient", times=-1)})
        faulty = inject_faults(_tasks(4), plan)
        results = run_tasks(faulty, jobs=2, raise_errors=False)
        failed = results[1]
        assert isinstance(failed.error, TransientFaultError)
        assert failed.traceback is not None
        assert "TransientFaultError" in failed.traceback


class TestSuperviseInternals:
    def test_attach_remote_traceback_chains_once(self):
        err = ValueError("x")
        out = attach_remote_traceback(err, "worker raise site")
        assert out is err
        assert isinstance(err.__cause__, _RemoteTraceback)
        assert "worker raise site" in str(err.__cause__)
        # Already-chained and locally-raised errors are left untouched.
        cause = err.__cause__
        attach_remote_traceback(err, "other text")
        assert err.__cause__ is cause
        live = ValueError("y")
        try:
            raise live
        except ValueError:
            pass
        attach_remote_traceback(live, "tb")
        assert live.__cause__ is None
        bare = ValueError("z")
        attach_remote_traceback(bare, None)
        assert bare.__cause__ is None

    def test_structured_supervision_results(self):
        [task] = _tasks(1)
        timed_out = _timeout_result(task, 1.5)
        assert isinstance(timed_out.error, TaskTimeoutError)
        assert timed_out.error.key == task.key
        assert timed_out.error.timeout_s == 1.5
        quarantined = _quarantined_result(task, attempts=2, reason="crash")
        assert isinstance(quarantined.error, TaskQuarantinedError)
        assert quarantined.attempts == 2
        assert "2 attempts" in str(quarantined.error)
        single = _quarantined_result(task, attempts=1, reason="crash")
        assert "1 attempt" in str(single.error)

    def test_pool_context_is_usable(self):
        ctx = pool_context()
        assert ctx.get_start_method() in ("fork", "spawn", "forkserver")

    def test_hard_stop_is_idempotent(self):
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=1, mp_context=pool_context())
        assert pool.submit(int, "7").result() == 7
        _hard_stop(pool)
        _hard_stop(pool)  # tolerates an already-stopped pool

    def test_retry_wait_uses_real_sleep_by_default(self):
        RetryPolicy(backoff_s=0.001).wait(1)  # must not raise
        RetryPolicy(backoff_s=0.0).wait(1)  # zero delay: no sleep at all

    def test_noop_fault_counts_without_misbehaving(self, tmp_path):
        plan = FaultPlan(tmp_path, {0: FaultSpec("noop", times=-1)})
        [task] = inject_faults(_tasks(1), plan)
        result = run_task(task)
        assert result.error is None
        assert task.activations() == 1
        run_task(task)
        assert task.activations() == 2


class TestFaultSites:
    """Named fault sites: the orchestrator-side (service-level) chaos
    hooks. Crash kinds genuinely ``os._exit`` the armed process, so the
    subprocess legs live in the journal/service chaos suites; everything
    else — arming, skip windows, counters, disarming — runs in-process
    here."""

    def test_unarmed_process_never_fires(self, monkeypatch, tmp_path):
        monkeypatch.delenv(SITES_ENV, raising=False)
        maybe_fire("journal-write")  # no env: a no-op, not an error
        # Armed directory, but this site was never armed: still a no-op,
        # and the counter does not even tick.
        monkeypatch.setenv(
            SITES_ENV,
            arm_sites(tmp_path, {"store-evict": FaultSpec("noop")})
            [SITES_ENV],
        )
        maybe_fire("journal-write")
        assert site_activations(tmp_path, "journal-write") == 0

    def test_skip_opens_the_fault_window_late(self, monkeypatch, tmp_path):
        # skip=1, times=2: pass, fail, fail, pass — the mechanism chaos
        # tests use to kill a service at its k-th journal write.
        monkeypatch.setenv(SITES_ENV, arm_sites(tmp_path, {
            "journal-write": FaultSpec("transient", times=2, skip=1),
        })[SITES_ENV])
        maybe_fire("journal-write")
        for _ in range(2):
            with pytest.raises(TransientFaultError):
                maybe_fire("journal-write")
        maybe_fire("journal-write")
        assert site_activations(tmp_path, "journal-write") == 4

    def test_delay_and_noop_sites(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SITES_ENV, arm_sites(tmp_path, {
            "service-batch": FaultSpec("delay", times=1, delay_s=0.0),
            "service-between-jobs": FaultSpec("noop", times=-1),
        })[SITES_ENV])
        maybe_fire("service-batch")  # delay elapses, nothing raises
        maybe_fire("service-between-jobs")
        maybe_fire("service-between-jobs")
        assert site_activations(tmp_path, "service-batch") == 1
        assert site_activations(tmp_path, "service-between-jobs") == 2

    def test_reset_disarms_and_forgets(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SITES_ENV, arm_sites(tmp_path, {
            "journal-write": FaultSpec("transient", times=-1),
        })[SITES_ENV])
        with pytest.raises(TransientFaultError):
            maybe_fire("journal-write")
        reset_sites(tmp_path)
        maybe_fire("journal-write")  # disarmed: fires nothing
        assert site_activations(tmp_path, "journal-write") == 0

    def test_rearming_overwrites_atomically(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SITES_ENV, arm_sites(tmp_path, {
            "journal-write": FaultSpec("transient", times=-1),
        })[SITES_ENV])
        arm_sites(tmp_path, {"journal-write": FaultSpec("noop")})
        maybe_fire("journal-write")  # now a noop; counter continues
        assert site_activations(tmp_path, "journal-write") == 1

    def test_torn_arming_file_never_faults(self, monkeypatch, tmp_path):
        # A half-written .site file must fail safe: no fault, no count.
        monkeypatch.setenv(SITES_ENV, str(tmp_path))
        (tmp_path / "journal-write.site").write_text("transient\n")
        maybe_fire("journal-write")
        assert site_activations(tmp_path, "journal-write") == 0

    def test_arm_sites_validation(self, tmp_path):
        with pytest.raises(EngineError, match="FaultSpec"):
            arm_sites(tmp_path, {"journal-write": "crash"})
        with pytest.raises(EngineError, match="skip"):
            FaultSpec("crash", skip=-1)

    def test_task_fault_honours_skip(self, tmp_path):
        # The same skip window on a task-level fault: first attempt
        # passes, second fails, third passes.
        plan = FaultPlan(
            tmp_path, {0: FaultSpec("transient", times=1, skip=1)}
        )
        [task] = inject_faults(_tasks(1), plan)
        assert run_task(task).error is None
        assert isinstance(run_task(task).error, TransientFaultError)
        assert run_task(task).error is None
        assert plan.activations(0) == 3


class TestSupervisionBenchmark:
    def test_bench_supervision_section(self):
        # The acceptance criterion in miniature: under an injected worker
        # crash a real (synthesis) sweep completes with the poison task
        # quarantined and every survivor identical to the fault-free run,
        # and arming supervision fault-free changes no results.
        from repro.bench.synthetic import synthetic_benchmark
        from repro.core.config import SynthesisConfig
        from repro.engine import ParameterGrid, build_tasks
        from repro.engine.benchmark import _bench_supervision
        from repro.engine.profile import ProfileRecorder

        bench = synthetic_benchmark(
            10, "random", num_layers=2, seed=11, floorplan_moves=300
        )
        tasks = build_tasks(
            bench.core_spec_3d, bench.comm_spec,
            ParameterGrid(frequencies_mhz=(400.0, 500.0)),
            SynthesisConfig(max_ill=10, switch_count_range=(2, 4)),
        )
        serial = run_tasks(tasks, jobs=1)
        report = _bench_supervision(
            tasks, serial, ProfileRecorder(), lambda _m: None, 2
        )
        assert report["identical_results"]
        recovery = report["recovery"]
        assert recovery["quarantined"] == 1
        assert recovery["poison_attributed"]
        assert recovery["attempts"] == 2
        assert recovery["survivors_identical"]


class _Interrupter:
    """Progress callback raising once a completion threshold is reached."""

    def __init__(self, at: int, exc: type):
        self.at = at
        self.exc = exc

    def __call__(self, done, _total, _key):
        if done >= self.at:
            raise self.exc()


class TestGracefulInterrupt:
    def test_keyboard_interrupt_is_prompt_and_checkpointed(self, tmp_path):
        # A 30s hang is pending when the interrupt fires: the run must not
        # wait it out, must keep completed checkpoints on disk, and must
        # not leave pool workers behind.
        plan = FaultPlan(
            tmp_path / "faults",
            {N_TASKS - 1: FaultSpec("delay", times=-1, delay_s=30.0)},
        )
        faulty = inject_faults(_tasks(), plan)
        store = ResultStore(tmp_path / "store")
        start = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            run_tasks(
                faulty, jobs=2, store=store,
                progress=_Interrupter(2, KeyboardInterrupt),
            )
        assert time.monotonic() - start < 10.0
        assert _store_entries(tmp_path / "store") >= 2
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and \
                time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    def test_interrupted_campaign_resumes_from_store(
        self, tmp_path, clean_results
    ):
        plan = FaultPlan(
            tmp_path / "faults",
            {N_TASKS - 1: FaultSpec("delay", times=-1, delay_s=30.0)},
        )
        store = ResultStore(tmp_path / "store")
        with pytest.raises(KeyboardInterrupt):
            run_tasks(
                inject_faults(_tasks(), plan), jobs=2, store=store,
                progress=_Interrupter(2, KeyboardInterrupt),
            )
        # Resume fault-free: checkpointed points are served from disk and
        # the merged campaign equals the clean cold run byte for byte.
        resumed = run_tasks(_tasks(), jobs=1, store=store)
        assert any(r.cached for r in resumed)
        assert pickle.dumps([r.result for r in resumed]) == pickle.dumps(
            [r.result for r in clean_results]
        )


class TestKilledAndResumed:
    def test_faulted_resume_merges_identically_to_cold_run(
        self, tmp_path, clean_results
    ):
        # Kill a store-backed campaign mid-flight *with faults injected*,
        # resume it with the same faults, and require the final merge to be
        # bit-identical to a fault-free cold run: the acceptance criterion
        # of the fault-injection harness.
        plan = FaultPlan(
            tmp_path / "faults",
            {FAULT_INDEX: FaultSpec("transient", times=1)},
        )
        store = ResultStore(tmp_path / "store")
        retry = RetryPolicy(max_retries=2)
        with pytest.raises(RuntimeError):
            run_tasks(
                inject_faults(_tasks(), plan), jobs=2, store=store,
                retry=retry, progress=_Interrupter(3, RuntimeError),
            )
        resumed = run_tasks(
            inject_faults(_tasks(), plan), jobs=2, store=store, retry=retry
        )
        assert pickle.dumps([r.result for r in resumed]) == pickle.dumps(
            [r.result for r in clean_results]
        )
        # The activation counter survives the kill, so the fault fired on
        # exactly one attempt across both runs (a reset would re-fire it on
        # resume). Attempt counts: fail + retry-success in whichever run(s)
        # executed the task, plus at most one recompute when the first
        # run's success was killed before its checkpoint was written.
        assert 2 <= plan.activations(FAULT_INDEX) <= 3
