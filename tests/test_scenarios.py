"""Traffic-scenario library (repro.noc.scenarios)."""

import pytest

from _simtopo import contended_topology

from repro.errors import SynthesisError
from repro.noc.scenarios import (
    BernoulliScenario,
    BurstyScenario,
    HotspotScenario,
    ScaledScenario,
    build_schedule,
    make_scenario,
)
from repro.noc.simulator import WormholeSimulator
from repro.rng import make_rng

FLOWS = [(0, 2), (1, 3), (1, 2), (3, 0)]


def _schedule(scenario, probs, cycles=4000, seed=0):
    return build_schedule(
        scenario, FLOWS[: len(probs)], probs, cycles, make_rng(seed, "t")
    )


def _count(schedule, fi):
    return sum(1 for row in schedule for f in row if f == fi)


class TestFactory:
    def test_none_is_bernoulli(self):
        assert isinstance(make_scenario(None), BernoulliScenario)

    def test_passthrough(self):
        scen = HotspotScenario(hotspot_core=2)
        assert make_scenario(scen) is scen

    def test_names_and_args(self):
        assert isinstance(make_scenario("bernoulli"), BernoulliScenario)
        assert make_scenario("hotspot:3").hotspot_core == 3
        assert make_scenario("bursty:16").mean_burst_cycles == 16.0
        assert make_scenario("scaled:1.5").factor == 1.5

    def test_rejects_unknown_and_malformed(self):
        with pytest.raises(SynthesisError):
            make_scenario("storm")
        with pytest.raises(SynthesisError):
            make_scenario("scaled:lots")
        with pytest.raises(SynthesisError):
            make_scenario("bernoulli:1")
        with pytest.raises(SynthesisError):
            make_scenario(42)

    def test_rejects_bad_parameters(self):
        with pytest.raises(SynthesisError):
            HotspotScenario(boost=0.0)
        with pytest.raises(SynthesisError):
            BurstyScenario(mean_burst_cycles=0.5)
        with pytest.raises(SynthesisError):
            ScaledScenario(factor=-1.0)

    def test_labels(self):
        assert make_scenario(None).label() == "bernoulli"
        assert "hotspot" in make_scenario("hotspot:2").label()


class TestSchedules:
    def test_shape_and_order(self):
        sched = _schedule(None, [0.3, 0.2, 0.5, 0.1], cycles=500)
        assert len(sched) == 500
        for row in sched:
            assert row == sorted(row)
            assert len(set(row)) == len(row)
            assert all(0 <= fi < 4 for fi in row)

    def test_bernoulli_rate_matches_probability(self):
        p = 0.2
        counts = [
            _count(_schedule(None, [p], cycles=2000, seed=s), 0)
            for s in range(10)
        ]
        rate = sum(counts) / (10 * 2000)
        assert rate == pytest.approx(p, rel=0.1)

    def test_probability_one_injects_every_cycle(self):
        sched = _schedule(None, [1.0, 0.0], cycles=100)
        assert all(row == [0] for row in sched)

    def test_zero_probability_never_injects(self):
        sched = _schedule(None, [0.0], cycles=200)
        assert all(row == [] for row in sched)

    def test_subnormal_probability_does_not_crash(self):
        """Regression: log(1.0 - p) underflows to 0 for p < ~1.1e-16 and
        used to raise ZeroDivisionError; log1p keeps the gap finite."""
        sched = _schedule(None, [1e-17, 1e-300], cycles=500)
        assert sum(len(row) for row in sched) == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SynthesisError):
            build_schedule(None, FLOWS, [0.1], 10, make_rng(0, "t"))


class TestHotspot:
    def test_auto_pick_busiest_destination(self):
        # Core 2 receives two of the four FLOWS.
        assert HotspotScenario().pick_hotspot(FLOWS) == 2

    def test_boost_raises_hot_flow_rate(self):
        probs = [0.05, 0.05, 0.05, 0.05]
        plain = _schedule(None, probs, seed=1)
        hot = _schedule(HotspotScenario(hotspot_core=2, boost=4.0), probs, seed=1)
        # Flows 0 and 2 target core 2; their injection count quadruples.
        hot_count = _count(hot, 0) + _count(hot, 2)
        plain_count = _count(plain, 0) + _count(plain, 2)
        assert hot_count > 2.5 * plain_count
        # The cold flows keep their specification rate (statistically).
        assert _count(hot, 1) + _count(hot, 3) == pytest.approx(
            _count(plain, 1) + _count(plain, 3), rel=0.3
        )

    def test_hotspot_raises_hot_switch_latency(self):
        """Behavioural: overloading core 2 grows the latency of the flows
        through its switch above the uniform-traffic baseline."""
        topo = contended_topology()
        uniform = WormholeSimulator(topo, seed=4).run(
            cycles=6000, warmup=600, injection_scale=0.8
        )
        hotspot = WormholeSimulator(topo, seed=4).run(
            cycles=6000, warmup=600, injection_scale=0.8,
            scenario=HotspotScenario(hotspot_core=2, boost=4.0),
        )
        hot_flows = [f for f in topo.routes if f[1] == 2]
        uniform_hot = sum(uniform.per_flow_latency[f] for f in hot_flows)
        hotspot_hot = sum(hotspot.per_flow_latency[f] for f in hot_flows)
        assert hotspot_hot > uniform_hot


class TestBursty:
    @pytest.mark.parametrize("p", [0.08, 0.7, 0.9, 0.95])
    def test_mean_load_preserved(self, p):
        """The same-mean-load contract must hold even where the required
        OFF->ON rate exceeds 1 (near-capacity flows, p > ~0.89 with the
        defaults) — the chain then degenerates rather than under-offering."""
        plain = sum(
            _count(_schedule(None, [p], seed=s), 0) for s in range(8)
        )
        bursty = sum(
            _count(_schedule(BurstyScenario(), [p], seed=s), 0)
            for s in range(8)
        )
        assert bursty == pytest.approx(plain, rel=0.2)

    def test_burstier_than_bernoulli(self):
        """Fano factor of per-window injection counts: on-off clumping
        makes the variance-to-mean ratio exceed the Bernoulli baseline."""
        p, window = 0.08, 50

        def fano(scenario):
            total_f = 0.0
            for s in range(6):
                sched = _schedule(scenario, [p], cycles=5000, seed=s)
                counts = [
                    sum(len(sched[c]) for c in range(w, w + window))
                    for w in range(0, 5000, window)
                ]
                mean = sum(counts) / len(counts)
                var = sum((c - mean) ** 2 for c in counts) / len(counts)
                total_f += var / mean
            return total_f / 6

        assert fano(BurstyScenario(mean_burst_cycles=25.0, peak=6.0)) > \
            1.8 * fano(None)

    def test_bursty_raises_latency_at_equal_load(self):
        """Behavioural: same offered load, clumped arrivals, more queueing."""
        topo = contended_topology()
        plain = WormholeSimulator(topo, seed=6).run(
            cycles=8000, warmup=800, injection_scale=1.0
        )
        bursty = WormholeSimulator(topo, seed=6).run(
            cycles=8000, warmup=800, injection_scale=1.0,
            scenario=BurstyScenario(mean_burst_cycles=25.0, peak=6.0),
        )
        assert bursty.avg_packet_latency > plain.avg_packet_latency


class TestScaled:
    def test_factor_scales_injection_rate(self):
        probs = [0.05, 0.05, 0.05, 0.05]
        base = sum(
            sum(len(r) for r in _schedule(None, probs, seed=s))
            for s in range(6)
        )
        doubled = sum(
            sum(len(r) for r in _schedule(ScaledScenario(2.0), probs, seed=s))
            for s in range(6)
        )
        assert doubled == pytest.approx(2 * base, rel=0.15)

    def test_zero_factor_silences_traffic(self, contended_topo):
        stats = WormholeSimulator(contended_topo, seed=1).run(
            cycles=500, warmup=100, scenario="scaled:0"
        )
        assert stats.packets_injected == 0
        assert stats.delivery_ratio == 1.0
