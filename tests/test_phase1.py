"""Phase 1 candidate generation (repro.core.phase1, Algorithm 1)."""

from repro.core.config import SynthesisConfig
from repro.core.phase1 import (
    phase1_candidate,
    phase1_candidates,
    phase1_scaled_candidate,
    switch_count_bounds,
)
from repro.graphs.comm_graph import build_comm_graph
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec


def _graph():
    cores = CoreSpec(cores=[
        Core(f"C{i}", 1, 1, 1.5 * (i % 3), 1.5 * (i // 3), i % 2)
        for i in range(6)
    ])
    comm = CommSpec(flows=[
        TrafficFlow("C0", "C1", 500, 8),   # cross-layer heavy
        TrafficFlow("C2", "C4", 300, 8),   # intra-layer 0
        TrafficFlow("C3", "C5", 200, 8),   # intra-layer 1
        TrafficFlow("C1", "C3", 100, 8),
    ])
    return build_comm_graph(cores, comm)


class TestBounds:
    def test_full_range_default(self):
        g = _graph()
        assert switch_count_bounds(g, SynthesisConfig()) == (1, 6)

    def test_clipped_by_config(self):
        g = _graph()
        cfg = SynthesisConfig(switch_count_range=(2, 4))
        assert switch_count_bounds(g, cfg) == (2, 4)

    def test_clipped_to_core_count(self):
        g = _graph()
        cfg = SynthesisConfig(switch_count_range=(2, 50))
        assert switch_count_bounds(g, cfg) == (2, 6)


class TestCandidates:
    def test_one_candidate_per_count(self):
        g = _graph()
        cfg = SynthesisConfig(switch_count_range=(1, 6))
        cands = list(phase1_candidates(g, cfg))
        assert [c.num_switches for c in cands] == [1, 2, 3, 4, 5, 6]
        assert all(c.phase == "phase1" for c in cands)

    def test_blocks_balanced(self):
        g = _graph()
        a = phase1_candidate(g, SynthesisConfig(), 3)
        sizes = sorted(len(b) for b in a.blocks)
        assert sizes == [2, 2, 2]

    def test_heavy_pair_shares_switch(self):
        g = _graph()
        a = phase1_candidate(g, SynthesisConfig(alpha=1.0), 3)
        c2s = a.core_to_switch
        assert c2s[0] == c2s[1]  # the 500 MB/s pair

    def test_cross_layer_block_gets_intermediate_layer(self):
        g = _graph()
        a = phase1_candidate(g, SynthesisConfig(), 3)
        # All switch layers must be valid layer indices.
        assert all(0 <= l < 2 for l in a.switch_layers)

    def test_scaled_candidate_prefers_same_layer(self):
        g = _graph()
        cfg = SynthesisConfig(alpha=1.0)
        scaled = phase1_scaled_candidate(g, cfg, 2, theta=15.0)
        assert scaled.theta == 15.0
        # With strong scaling the two blocks align with the two layers.
        for block in scaled.blocks:
            layers = {g.layers[c] for c in block}
            assert len(layers) == 1

    def test_deterministic(self):
        g = _graph()
        cfg = SynthesisConfig(seed=3)
        a = phase1_candidate(g, cfg, 3)
        b = phase1_candidate(g, cfg, 3)
        assert a.blocks == b.blocks
