"""Flit-level wormhole simulator (repro.noc.simulator)."""

import pytest

pytestmark = pytest.mark.slow

from repro.core.config import SynthesisConfig
from repro.core.synthesis import synthesize
from repro.errors import SynthesisError
from repro.models.library import default_library
from repro.noc.metrics import flow_latency_cycles
from repro.noc.simulator import WormholeSimulator, simulate_design_point
from repro.noc.topology import Topology


def _point(tiny_specs):
    core_spec, comm_spec = tiny_specs
    result = synthesize(
        core_spec, comm_spec,
        config=SynthesisConfig(max_ill=10, switch_count_range=(2, 3)),
    )
    return result.best_power()


class TestValidation:
    def test_unrouted_topology_rejected(self):
        topo = Topology(frequency_mhz=400.0, width_bits=32)
        with pytest.raises(SynthesisError):
            WormholeSimulator(topo)

    def test_bad_parameters_rejected(self, tiny_specs):
        point = _point(tiny_specs)
        with pytest.raises(SynthesisError):
            WormholeSimulator(point.topology, buffer_depth=0)
        with pytest.raises(SynthesisError):
            WormholeSimulator(point.topology, packet_length_flits=0)
        sim = WormholeSimulator(point.topology)
        with pytest.raises(SynthesisError):
            sim.run(cycles=100, warmup=100)


class TestSimulation:
    def test_all_packets_delivered_at_low_load(self, tiny_specs):
        point = _point(tiny_specs)
        sim = WormholeSimulator(point.topology, seed=1)
        stats = sim.run(cycles=8000, warmup=1000, injection_scale=0.2)
        assert stats.packets_injected > 10
        # The post-horizon drain flushes every in-flight packet: at light
        # load the delivery ratio is exactly 1.
        assert stats.delivery_ratio == 1.0
        assert stats.packets_delivered == stats.packets_injected

    def test_latency_at_least_zero_load(self, tiny_specs):
        """Measured latency can never beat the zero-load analytic bound."""
        point = _point(tiny_specs)
        lib = default_library()
        sim = WormholeSimulator(point.topology, seed=2)
        stats = sim.run(cycles=8000, warmup=1000, injection_scale=0.2)
        zero_load = {
            f: flow_latency_cycles(point.topology, f, lib)
            for f in point.topology.routes
        }
        for flow, measured in stats.per_flow_latency.items():
            assert measured >= zero_load[flow] - 1e-9

    def test_latency_close_to_zero_load_at_light_traffic(self, tiny_specs):
        point = _point(tiny_specs)
        lib = default_library()
        sim = WormholeSimulator(point.topology, seed=3, packet_length_flits=2)
        stats = sim.run(cycles=10_000, warmup=1000, injection_scale=0.05)
        avg_zero_load = sum(
            flow_latency_cycles(point.topology, f, lib)
            for f in point.topology.routes
        ) / len(point.topology.routes)
        # Zero-load + serialisation (1 extra flit) + per-link registers: the
        # sim should stay within a small constant of the analytic bound.
        assert stats.avg_packet_latency <= avg_zero_load + 8.0

    def test_latency_grows_with_load(self, tiny_specs):
        point = _point(tiny_specs)
        light = WormholeSimulator(point.topology, seed=4).run(
            cycles=6000, warmup=500, injection_scale=0.1
        )
        heavy = WormholeSimulator(point.topology, seed=4).run(
            cycles=6000, warmup=500, injection_scale=1.0
        )
        assert heavy.avg_packet_latency >= light.avg_packet_latency

    def test_deterministic(self, tiny_specs):
        point = _point(tiny_specs)
        a = WormholeSimulator(point.topology, seed=7).run(cycles=4000, warmup=400)
        b = WormholeSimulator(point.topology, seed=7).run(cycles=4000, warmup=400)
        assert a.avg_packet_latency == b.avg_packet_latency
        assert a.packets_delivered == b.packets_delivered

    def test_convenience_wrapper(self, tiny_specs):
        point = _point(tiny_specs)
        stats = simulate_design_point(point, cycles=4000, warmup=400)
        assert stats.cycles == 4000

    def test_custom_library_threads_through(self, tiny_specs):
        """simulate_design_point must honour library= (it used to silently
        simulate with default_library())."""
        point = _point(tiny_specs)
        default = simulate_design_point(
            point, cycles=4000, warmup=400, injection_scale=0.2
        )
        # A library with 10x wire delay pipelines every link deeper, so
        # measured latency must rise if (and only if) it is actually used.
        slow = default_library().with_link(wire_delay_ns_per_mm=9.0)
        slowed = simulate_design_point(
            point, cycles=4000, warmup=400, injection_scale=0.2, library=slow,
        )
        assert slowed.avg_packet_latency > default.avg_packet_latency + 1.0
