"""Service chaos: SIGKILL-equivalent crashes at exact points, then resume.

The acceptance criterion of the durable campaign service: a service
process killed at an *arbitrary* instruction — mid journal append, on the
way into a task batch, in the gap between two jobs — and restarted with
``serve --resume`` must finish with results **byte-identical** to a run
that was never interrupted.

"Arbitrary instruction" is made deterministic by the named fault sites in
:mod:`repro.engine.faults`: a ``crash`` spec with ``skip=k`` hard-exits
the armed process (``os._exit``, indistinguishable from ``kill -9`` at
that line) on the site's activation ``k+1``. Each leg here runs the real
CLI (``python -m repro.cli serve --once``) in a subprocess, because the
victim genuinely dies.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import CampaignService
from repro.campaign.journal import JobJournal
from repro.campaign.service import submit_file
from repro.engine.faults import FaultSpec, arm_sites, site_activations

REPO = Path(__file__).resolve().parents[1]

#: Two small real campaigns (2 synthesis tasks each, ~0.5s total) so the
#: round-robin scheduler has genuine interleaving to be killed inside of.
SPECS = (
    {
        "name": "alpha", "kind": "sweep", "benchmark": "d26_media",
        "grid": {"frequencies_mhz": [400, 800]},
        "config": {"switch_count_range": [3, 4]},
    },
    {
        "name": "beta", "kind": "sweep", "benchmark": "d26_media",
        "grid": {"frequencies_mhz": [500, 600]},
        "config": {"switch_count_range": [3, 4]},
    },
)

#: (site, skip, exit_code): where the service dies. With ``--batch 1``
#: and two 2-task jobs the interleaving is deterministic, so each skip
#: lands at a known — and distinct — point of the job lifecycle:
#:   journal-write skip=4        dying *inside* the append of job-0001's
#:                               first progress record (the batch already
#:                               ran; its payload is in the store, the
#:                               journal never heard about it);
#:   service-batch skip=2        dying on the way into the third batch
#:                               (both jobs half done);
#:   service-between-jobs skip=0 dying the instant the first job
#:                               finished (its result file and ``done``
#:                               record are on disk, the other job is
#:                               half done).
KILL_POINTS = (
    ("journal-write", 4, 41),
    ("service-batch", 2, 42),
    ("service-between-jobs", 0, 43),
)


def _cli(args, *, extra_env=None, timeout=180):
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH")
        else src
    )
    env.pop("REPRO_FAULT_SITES", None)  # never inherit an armed site
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, cwd=REPO, capture_output=True, text=True, timeout=timeout,
    )


def _submit_all(spool: Path, scratch: Path) -> None:
    for i, spec in enumerate(SPECS):
        path = scratch / f"spec-{i}.json"
        path.write_text(json.dumps(spec))
        submit_file(spool, path)


def _results(spool: Path) -> dict:
    return {
        p.name: p.read_bytes()
        for p in sorted((spool / "results").glob("*.pkl"))
    }


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The uninterrupted run every killed-and-resumed spool must equal."""
    scratch = tmp_path_factory.mktemp("reference")
    spool = scratch / "spool"
    _submit_all(spool, scratch)
    proc = _cli(["serve", "--dir", str(spool), "--once", "--batch", "1"])
    assert proc.returncode == 0, (proc.stdout, proc.stderr)
    results = _results(spool)
    assert set(results) == {"job-0001.pkl", "job-0002.pkl"}
    return results


@pytest.mark.slow
class TestKilledServiceResumes:
    @pytest.mark.parametrize(
        "site, skip, exit_code", KILL_POINTS,
        ids=[site for site, _s, _c in KILL_POINTS],
    )
    def test_resume_is_bit_identical(
        self, tmp_path, reference, site, skip, exit_code
    ):
        spool = tmp_path / "spool"
        sites = tmp_path / "sites"
        _submit_all(spool, tmp_path)
        env = arm_sites(sites, {
            site: FaultSpec(
                "crash", times=1, skip=skip, exit_code=exit_code
            ),
        })

        victim = _cli(
            ["serve", "--dir", str(spool), "--once", "--batch", "1"],
            extra_env=env,
        )
        assert victim.returncode == exit_code, (
            victim.stdout, victim.stderr
        )
        # The site fired exactly where it was armed to.
        assert site_activations(sites, site) == skip + 1

        # A crash is resumed deliberately: without --resume the spool
        # refuses to open, exit 2, naming the incomplete jobs.
        refused = _cli(
            ["serve", "--dir", str(spool), "--once", "--batch", "1"]
        )
        assert refused.returncode == 2
        assert "incomplete" in refused.stderr
        assert "--resume" in refused.stderr

        resumed = _cli([
            "serve", "--dir", str(spool), "--once", "--batch", "1",
            "--resume",
        ])
        assert resumed.returncode == 0, (resumed.stdout, resumed.stderr)

        # The acceptance criterion: every result file byte-identical to
        # the run that was never killed, and the journaled digests agree.
        assert _results(spool) == reference
        state = CampaignService.status(spool)
        for name, blob in reference.items():
            job = state.jobs[name[: -len(".pkl")]]
            assert job.state == "done"
            assert job.digest == hashlib.sha256(blob).hexdigest()

        # The resumed service re-enqueued journaled work rather than
        # rediscovering it: the replayed jobs carry resumed markers.
        journal = JobJournal(spool / "journal.jsonl", writer=False)
        resumed_jobs = [
            r["job"] for r in journal.iter_records()
            if r["event"] == "queued" and r.get("resumed")
        ]
        assert resumed_jobs, "resume must re-enqueue the incomplete jobs"

    def test_resume_serves_completed_tasks_from_store(
        self, tmp_path, reference
    ):
        """The mechanism behind bit-identity: after the kill, the store
        already holds the completed tasks' payloads, so the resumed run
        recomputes only what the crash actually lost."""
        spool = tmp_path / "spool"
        sites = tmp_path / "sites"
        _submit_all(spool, tmp_path)
        # Die entering the very last batch: 3 of 4 tasks are checkpointed.
        env = arm_sites(sites, {
            "service-batch": FaultSpec(
                "crash", times=1, skip=3, exit_code=45
            ),
        })
        victim = _cli(
            ["serve", "--dir", str(spool), "--once", "--batch", "1"],
            extra_env=env,
        )
        assert victim.returncode == 45, (victim.stdout, victim.stderr)

        store_before = {
            p.relative_to(spool) for p in (spool / "store").rglob("*.pkl")
        }
        assert len(store_before) == 3

        resumed = _cli([
            "serve", "--dir", str(spool), "--once", "--batch", "1",
            "--resume",
        ])
        assert resumed.returncode == 0, (resumed.stdout, resumed.stderr)
        assert _results(spool) == reference
        # Every pre-kill payload was reused in place, none recomputed
        # into a different address.
        store_after = {
            p.relative_to(spool) for p in (spool / "store").rglob("*.pkl")
        }
        assert store_before <= store_after
        assert len(store_after) == 4
