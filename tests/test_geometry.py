"""Rectangle geometry (repro.floorplan.geometry)."""

import pytest
from hypothesis import given, strategies as st

from repro.floorplan.geometry import (
    Rect,
    bounding_box,
    manhattan,
    overlap_area,
    rects_overlap,
)


class TestRect:
    def test_derived_properties(self):
        r = Rect(1.0, 2.0, 3.0, 4.0)
        assert r.x2 == 4.0 and r.y2 == 6.0
        assert r.area == 12.0
        assert r.center == (2.5, 4.0)

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1.0, 2.0)

    def test_moved_translated(self):
        r = Rect(0, 0, 1, 1)
        assert r.moved_to(5, 6).x == 5
        assert r.translated(1, 2).y == 2

    def test_contains_point(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(1, 1)
        assert r.contains_point(0, 0)  # boundary
        assert not r.contains_point(3, 1)


class TestOverlap:
    def test_overlapping(self):
        assert rects_overlap(Rect(0, 0, 2, 2), Rect(1, 1, 2, 2))

    def test_disjoint(self):
        assert not rects_overlap(Rect(0, 0, 1, 1), Rect(5, 5, 1, 1))

    def test_abutting_edges_do_not_overlap(self):
        assert not rects_overlap(Rect(0, 0, 1, 1), Rect(1.0, 0, 1, 1))

    def test_contained(self):
        assert rects_overlap(Rect(0, 0, 10, 10), Rect(2, 2, 1, 1))

    def test_overlap_area(self):
        assert overlap_area(Rect(0, 0, 2, 2), Rect(1, 1, 2, 2)) == pytest.approx(1.0)
        assert overlap_area(Rect(0, 0, 1, 1), Rect(3, 3, 1, 1)) == 0.0


class TestBoundingBox:
    def test_empty(self):
        assert bounding_box([]) is None

    def test_single(self):
        bbox = bounding_box([Rect(1, 2, 3, 4)])
        assert bbox == Rect(1, 2, 3, 4)

    def test_multiple(self):
        bbox = bounding_box([Rect(0, 0, 1, 1), Rect(4, 5, 1, 1)])
        assert bbox.x2 == 5.0 and bbox.y2 == 6.0

    def test_manhattan(self):
        assert manhattan((0, 0), (3, 4)) == 7.0


class TestOverlapProperties:
    rect_strategy = st.builds(
        Rect,
        x=st.floats(min_value=0, max_value=100),
        y=st.floats(min_value=0, max_value=100),
        width=st.floats(min_value=0.1, max_value=50),
        height=st.floats(min_value=0.1, max_value=50),
    )

    @given(a=rect_strategy, b=rect_strategy)
    def test_overlap_symmetric(self, a, b):
        assert rects_overlap(a, b) == rects_overlap(b, a)

    @given(a=rect_strategy, b=rect_strategy)
    def test_positive_overlap_area_iff_overlap(self, a, b):
        area = overlap_area(a, b)
        if rects_overlap(a, b):
            assert area > 0
        else:
            assert area <= 1e-6 * min(a.area, b.area) + 1e-9

    @given(a=rect_strategy)
    def test_self_overlap(self, a):
        assert rects_overlap(a, a)
        assert overlap_area(a, a) == pytest.approx(a.area)

    @given(rects=st.lists(rect_strategy, min_size=1, max_size=8))
    def test_bbox_contains_all(self, rects):
        bbox = bounding_box(rects)
        for r in rects:
            assert bbox.x <= r.x + 1e-9 and bbox.y <= r.y + 1e-9
            assert bbox.x2 >= r.x2 - 1e-9 and bbox.y2 >= r.y2 - 1e-9
