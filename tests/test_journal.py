"""The write-ahead job journal: checksums, torn tails, single-writer."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.campaign.journal import JobJournal
from repro.errors import JournalError


def journal(tmp_path, **kw) -> JobJournal:
    return JobJournal(tmp_path / "journal.jsonl", **kw)


def test_empty_journal_replays_empty(tmp_path):
    with journal(tmp_path) as j:
        state = j.replay()
    assert state.jobs == {}
    assert state.last_seq == -1
    assert not state.torn_tail


def test_lifecycle_replay(tmp_path):
    with journal(tmp_path) as j:
        j.append("submitted", job="job-0001", spec={"name": "a"},
                 total_tasks=4)
        j.append("running", job="job-0001", total_tasks=4)
        j.append("progress", job="job-0001", done_tasks=2, total_tasks=4)
        j.append("done", job="job-0001", done_tasks=4, total_tasks=4,
                 digest="abc", result_path="r.pkl")
        state = j.replay()
    job = state.jobs["job-0001"]
    assert job.state == "done"
    assert job.done_tasks == 4 and job.total_tasks == 4
    assert job.digest == "abc" and job.result_path == "r.pkl"
    assert job.spec == {"name": "a"}
    assert not job.active
    assert state.incomplete == []


def test_incomplete_jobs_in_submission_order(tmp_path):
    with journal(tmp_path) as j:
        for i in (1, 2, 3):
            j.append("submitted", job=f"job-000{i}", spec={"name": str(i)})
        j.append("running", job="job-0001")
        j.append("done", job="job-0002", digest="x")
        state = j.replay()
    assert [job.job_id for job in state.incomplete] == [
        "job-0001", "job-0003"
    ]
    assert state.next_job_number == 4


def test_rejected_records_counted_not_jobs(tmp_path):
    with journal(tmp_path) as j:
        j.append("rejected", name="overflow", queue_depth=8, max_queue=8)
        state = j.replay()
    assert state.rejected == 1
    assert state.jobs == {}


def test_torn_tail_tolerated(tmp_path):
    with journal(tmp_path) as j:
        j.append("submitted", job="job-0001", spec={})
        j.append("running", job="job-0001")
    path = tmp_path / "journal.jsonl"
    raw = path.read_bytes()
    # Simulate a crash mid-append: half of one record, no newline.
    path.write_bytes(raw + b'{"seq": 2, "event": "do')
    state = JobJournal(path, writer=False).replay()
    assert state.torn_tail
    assert state.jobs["job-0001"].state == "running"
    # A new writer resumes *after* the valid prefix.
    with JobJournal(path) as j:
        record = j.append("done", job="job-0001")
    assert record["seq"] == 2


def test_corruption_before_tail_raises(tmp_path):
    with journal(tmp_path) as j:
        j.append("submitted", job="job-0001", spec={})
        j.append("running", job="job-0001")
        j.append("done", job="job-0001")
    path = tmp_path / "journal.jsonl"
    lines = path.read_bytes().splitlines(keepends=True)
    lines[1] = b'{"seq": 1, "event": "garbage", "crc": "00000000"}\n'
    path.write_bytes(b"".join(lines))
    with pytest.raises(JournalError, match="line 2"):
        JobJournal(path, writer=False).replay()


def test_bit_flip_detected_by_checksum(tmp_path):
    with journal(tmp_path) as j:
        j.append("submitted", job="job-0001", spec={})
        j.append("done", job="job-0001", digest="real")
        j.append("checkpoint")
    path = tmp_path / "journal.jsonl"
    text = path.read_text()
    # Flip the digest without recomputing the crc: valid JSON, wrong sum.
    path.write_text(text.replace('"digest":"real"', '"digest":"fake"'))
    with pytest.raises(JournalError, match="checksum"):
        JobJournal(path, writer=False).replay()


def test_sequence_regression_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    lines = []
    for seq in (0, 0):  # two writers both starting at 0
        record = {"seq": seq, "event": "submitted", "job": f"j{seq}"}
        record["crc"] = format(
            zlib.crc32(json.dumps(
                record, sort_keys=True, separators=(",", ":")
            ).encode()), "08x",
        )
        lines.append(json.dumps(record, sort_keys=True,
                                separators=(",", ":")))
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="sequence"):
        JobJournal(path, writer=False).replay()


def test_single_writer_enforced(tmp_path):
    with journal(tmp_path) as first:
        with pytest.raises(JournalError, match="another"):
            journal(tmp_path)
        # Readers are always fine.
        reader = journal(tmp_path, writer=False)
        assert not reader.is_writer
        with pytest.raises(JournalError, match="read-only"):
            reader.append("checkpoint")
        first.append("checkpoint")
    # Writer slot freed on close.
    with journal(tmp_path) as second:
        assert second.is_writer


def test_unknown_event_rejected(tmp_path):
    with journal(tmp_path) as j:
        with pytest.raises(JournalError, match="unknown journal event"):
            j.append("exploded", job="job-0001")


def test_writer_resumes_sequence_across_reopen(tmp_path):
    with journal(tmp_path) as j:
        j.append("submitted", job="job-0001", spec={})
    with journal(tmp_path) as j:
        record = j.append("running", job="job-0001")
    assert record["seq"] == 1


def test_compact_preserves_replay_state(tmp_path):
    with journal(tmp_path) as j:
        j.append("service-start")
        j.append("submitted", job="job-0001", spec={"name": "a"},
                 total_tasks=6)
        j.append("running", job="job-0001", total_tasks=6)
        for done in (2, 4):
            j.append("progress", job="job-0001", done_tasks=done,
                     total_tasks=6)
        j.append("done", job="job-0001", done_tasks=6, total_tasks=6,
                 digest="d", result_path="p")
        j.append("submitted", job="job-0002", spec={"name": "b"},
                 total_tasks=2)
        before = j.replay()
        dropped = j.compact()
        after = j.replay()
    assert dropped > 0
    assert after.jobs.keys() == before.jobs.keys()
    for job_id in before.jobs:
        b, a = before.jobs[job_id], after.jobs[job_id]
        assert (a.state, a.done_tasks, a.total_tasks, a.digest, a.spec) == \
               (b.state, b.done_tasks, b.total_tasks, b.digest, b.spec)
    assert after.next_job_number == before.next_job_number


def test_compacted_journal_appendable(tmp_path):
    with journal(tmp_path) as j:
        j.append("submitted", job="job-0001", spec={})
        j.append("done", job="job-0001")
        j.compact()
        j.append("submitted", job="job-0002", spec={})
        state = j.replay()
    assert set(state.jobs) == {"job-0001", "job-0002"}


def test_journal_write_fault_site_crashes_before_record(tmp_path):
    """The write-ahead discipline under chaos: a crash armed at the
    journal-write site dies *before* the bytes land."""
    import multiprocessing

    from repro.engine.faults import FaultSpec, arm_sites

    mp = multiprocessing.get_context("fork")
    sites = tmp_path / "sites"
    env = arm_sites(sites, {
        "journal-write": FaultSpec(kind="crash", times=1, skip=1,
                                   exit_code=44),
    })

    def victim():
        import os

        os.environ.update(env)
        with JobJournal(tmp_path / "journal.jsonl") as j:
            j.append("submitted", job="job-0001", spec={})  # passes (skip)
            j.append("running", job="job-0001")  # dies before writing

    child = mp.Process(target=victim)
    child.start()
    child.join(30)
    assert child.exitcode == 44
    state = JobJournal(tmp_path / "journal.jsonl", writer=False).replay()
    # The first record landed; the second never did — no third state.
    assert state.jobs["job-0001"].state == "queued"
    assert state.records == 1
