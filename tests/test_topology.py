"""NoC topology data model (repro.noc.topology)."""

import pytest

from repro.errors import SynthesisError
from repro.noc.topology import Topology, core_ep, switch_ep


@pytest.fixture
def topo():
    t = Topology(frequency_mhz=400.0, width_bits=32)
    t.add_switch(0)
    t.add_switch(1)
    t.add_switch(2)
    return t


class TestConstruction:
    def test_attach_core_creates_two_links(self, topo):
        inj, ej = topo.attach_core(0, 0, core_layer=0)
        assert inj.src == core_ep(0) and inj.dst == switch_ep(0)
        assert ej.src == switch_ep(0) and ej.dst == core_ep(0)
        assert topo.switches[0].in_ports == 1
        assert topo.switches[0].out_ports == 1

    def test_attach_core_twice_rejected(self, topo):
        topo.attach_core(0, 0, 0)
        with pytest.raises(SynthesisError):
            topo.attach_core(0, 1, 0)

    def test_core_link_crossing_layers_counts_ill(self, topo):
        topo.attach_core(0, 2, core_layer=0)  # core L0 -> switch L2
        # injection and ejection each cross boundaries (0,1) and (1,2).
        assert topo.ill[(0, 1)] == 2
        assert topo.ill[(1, 2)] == 2
        assert topo.ill_between(0, 2) == 4

    def test_switch_link_ports_and_ill(self, topo):
        link = topo.add_switch_link(0, 1)
        assert link.is_vertical and link.layers_crossed == 1
        assert topo.switches[0].out_ports == 1
        assert topo.switches[1].in_ports == 1
        assert topo.ill[(0, 1)] == 1

    def test_self_link_rejected(self, topo):
        with pytest.raises(SynthesisError):
            topo.add_switch_link(1, 1)

    def test_links_between_uses_index(self, topo):
        a = topo.add_switch_link(0, 1)
        b = topo.add_switch_link(0, 1)
        found = topo.links_between(switch_ep(0), switch_ep(1))
        assert [l.id for l in found] == [a.id, b.id]
        assert topo.links_between(switch_ep(1), switch_ep(0)) == []

    def test_capacity(self, topo):
        assert topo.capacity_mbps == pytest.approx(1600.0)


class TestRoutes:
    def _routed(self, topo):
        topo.attach_core(0, 0, 0)
        topo.attach_core(1, 1, 1)
        link = topo.add_switch_link(0, 1)
        inj = topo.injection_link(0)
        ej = topo.ejection_link(1)
        topo.record_route((0, 1), [inj.id, link.id, ej.id], [0, 1], 200.0)
        return topo, link

    def test_record_route_accumulates_load(self, topo):
        topo, link = self._routed(topo)
        assert link.load_mbps == pytest.approx(200.0)
        assert topo.flow_bandwidth[(0, 1)] == pytest.approx(200.0)
        assert (0, 1) in link.flows

    def test_double_route_rejected(self, topo):
        topo, link = self._routed(topo)
        with pytest.raises(SynthesisError):
            topo.record_route((0, 1), [link.id], [0], 1.0)

    def test_validate_routes_passes(self, topo):
        topo, _ = self._routed(topo)
        topo.validate_routes()

    def test_validate_catches_broken_chain(self, topo):
        topo, link = self._routed(topo)
        ej = topo.ejection_link(1)
        topo.routes[(0, 1)] = [ej.id, link.id]
        with pytest.raises(SynthesisError):
            topo.validate_routes()

    def test_validate_catches_wrong_endpoints(self, topo):
        topo, link = self._routed(topo)
        inj = topo.injection_link(0)
        topo.routes[(0, 1)] = [inj.id, link.id]  # missing ejection
        with pytest.raises(SynthesisError):
            topo.validate_routes()

    def test_check_capacity(self, topo):
        topo, link = self._routed(topo)
        assert topo.check_capacity() == []
        link.load_mbps = 2000.0
        assert link.id in topo.check_capacity()

    def test_missing_injection_link(self, topo):
        topo.core_to_switch[5] = 0
        with pytest.raises(SynthesisError):
            topo.injection_link(5)


class TestQueries:
    def test_stats(self, topo):
        topo.attach_core(0, 0, 0)
        topo.add_switch_link(0, 1)
        topo.add_switch_link(1, 2)
        assert topo.num_vertical_links == 2
        assert topo.num_switch_links == 2
        assert topo.max_ill_used == 1
        assert topo.max_switch_size == 2  # switch 1: 1 in + ... max(in,out)

    def test_switch_size(self, topo):
        topo.attach_core(0, 0, 0)
        topo.attach_core(1, 0, 0)
        sw = topo.switches[0]
        assert sw.size == 2
        topo.add_switch_link(0, 1)
        assert sw.size == 3  # out_ports = 3 now
