"""Indirect switches (Sec. VI): repair for switch-size infeasibility.

"When paths are computed, if it is not feasible to meet the
max_switch_size constraints, we introduce new switches in the topology that
are used to connect the other switches together."

The repair mechanism (:func:`repro.core.paths._try_add_indirect_switch`) is
tested directly; full-flow tests check that routing still succeeds under
heavy port pressure and that disabling the feature never produces indirect
switches.
"""

from repro.core.assignment import assignment_from_blocks
from repro.core.config import SynthesisConfig
from repro.core.paths import (
    _try_add_indirect_switch,
    build_topology_skeleton,
    compute_paths,
)
from repro.graphs.comm_graph import build_comm_graph
from repro.models.library import default_library
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec


def _all_to_all_setup(allow_indirect: bool, max_size_slope: float = 112.0):
    """Five 2-core switches with all-to-all inter-switch traffic, under a
    library limiting switches to 4 ports at 400 MHz."""
    n = 10
    cores = CoreSpec(cores=[
        Core(f"C{i}", 1, 1, 1.4 * (i % 5), 1.4 * (i // 5), 0) for i in range(n)
    ])
    flows = []
    firsts = [0, 2, 4, 6, 8]
    for a in firsts:
        for b in firsts:
            if a != b:
                flows.append(TrafficFlow(f"C{a}", f"C{b}", 60, 20))
    comm = CommSpec(flows=flows)
    graph = build_comm_graph(cores, comm)
    library = default_library().with_switch(fmax_slope_mhz_per_port=max_size_slope)
    config = SynthesisConfig(max_ill=25, allow_indirect_switches=allow_indirect)
    blocks = [[2 * k, 2 * k + 1] for k in range(5)]
    assignment = assignment_from_blocks(blocks, graph, "mean", "phase1")
    centers = {i: c.center for i, c in enumerate(cores)}
    topo = build_topology_skeleton(assignment, graph, library, config, centers)
    return topo, graph, library, config, centers


class TestRepairMechanism:
    def test_adds_coreless_switch_on_flow_layer(self):
        topo, graph, lib, cfg, centers = _all_to_all_setup(True)
        before = len(topo.switches)
        added = _try_add_indirect_switch(topo, cfg, lib, 0, 2, set())
        assert added
        assert len(topo.switches) == before + 1
        new = topo.switches[-1]
        assert new.is_indirect
        assert new.layer == 0
        assert all(s != new.id for s in topo.core_to_switch.values())

    def test_position_is_layer_centroid(self):
        topo, graph, lib, cfg, centers = _all_to_all_setup(True)
        peers = [s for s in topo.switches if s.layer == 0]
        expect_x = sum(p.x for p in peers) / len(peers)
        _try_add_indirect_switch(topo, cfg, lib, 0, 2, set())
        assert topo.switches[-1].x == expect_x

    def test_one_per_layer(self):
        topo, graph, lib, cfg, centers = _all_to_all_setup(True)
        seen = set()
        assert _try_add_indirect_switch(topo, cfg, lib, 0, 2, seen)
        # All switches are on layer 0 here; a second request must refuse.
        assert not _try_add_indirect_switch(topo, cfg, lib, 0, 2, seen)

    def test_disabled_by_config(self):
        topo, graph, lib, cfg, centers = _all_to_all_setup(False)
        assert not _try_add_indirect_switch(topo, cfg, lib, 0, 2, set())


class TestFullFlowUnderPortPressure:
    def test_all_to_all_routes_within_size_limit(self):
        topo, graph, lib, cfg, centers = _all_to_all_setup(True)
        max_size = lib.switch.max_switch_size(cfg.frequency_mhz)
        assert max_size == 4
        compute_paths(topo, graph, lib, cfg, centers)
        for sw in topo.switches:
            assert sw.size <= max_size
        assert len(topo.routes) == len(graph.edges)

    def test_disabled_indirect_never_creates_one(self, small_specs):
        core_spec, comm_spec = small_specs
        from repro.core.synthesis import synthesize

        cfg = SynthesisConfig(max_ill=12, allow_indirect_switches=False)
        result = synthesize(core_spec, comm_spec, config=cfg)
        for p in result.points:
            assert not any(sw.is_indirect for sw in p.topology.switches)
