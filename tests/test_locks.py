"""FileLock and the ResultStore two-process mutation guard.

The regression at the heart of this file: before the lock + grace window,
one process's ``evict()`` could unlink an entry another process had *just*
written (its ``put`` → ``get`` window), so a concurrently-evicted store
would serve misses for results that were checkpointed moments earlier.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.engine.locks import FileLock
from repro.engine.store import ResultStore
from repro.engine.tasks import FloorplanTask
from repro.errors import LockTimeoutError
from repro.floorplan.sequence_pair import SequencePair

mp = multiprocessing.get_context("fork")


def cheap_task(i: int) -> FloorplanTask:
    return FloorplanTask(
        key=f"lock-{i}", widths=(2.0, 3.0, 1.5, 2.5),
        heights=(1.0, 2.0, 1.2, 0.8), seed=9, moves=40,
        initial_sp=SequencePair.grid(4), restart=i,
    )


# -- FileLock ---------------------------------------------------------------

def test_acquire_release_roundtrip(tmp_path):
    lock = FileLock(tmp_path / "x.lock")
    assert not lock.locked
    assert lock.acquire() is True
    assert lock.locked
    lock.release()
    assert not lock.locked
    lock.release()  # idempotent


def test_context_manager(tmp_path):
    with FileLock(tmp_path / "x.lock") as lock:
        assert lock.locked
    assert not lock.locked


def test_reacquire_held_lock_raises(tmp_path):
    with FileLock(tmp_path / "x.lock") as lock:
        with pytest.raises(LockTimeoutError):
            lock.acquire()


def test_creates_parent_directories(tmp_path):
    with FileLock(tmp_path / "a" / "b" / "x.lock") as lock:
        assert lock.locked


def test_unopenable_path_raises_lock_timeout(tmp_path):
    blocker = tmp_path / "file"
    blocker.write_text("")
    with pytest.raises(LockTimeoutError):
        FileLock(blocker / "x.lock").acquire()


def _hold_lock(path, held, release):
    lock = FileLock(path)
    lock.acquire()
    held.set()
    release.wait(10)
    lock.release()


def test_second_process_nonblocking_returns_false(tmp_path):
    path = tmp_path / "x.lock"
    held, release = mp.Event(), mp.Event()
    child = mp.Process(target=_hold_lock, args=(path, held, release))
    child.start()
    try:
        assert held.wait(10)
        assert FileLock(path).acquire(timeout_s=0) is False
        with pytest.raises(LockTimeoutError):
            FileLock(path).acquire(timeout_s=0.05)
    finally:
        release.set()
        child.join(10)
    # Released by the child: immediately acquirable again.
    assert FileLock(path).acquire(timeout_s=0) is True


def _hold_lock_and_die(path, held):
    lock = FileLock(path)  # reference kept: __del__ must not release it
    lock.acquire()
    held.set()
    time.sleep(30)  # killed long before this returns


def test_kernel_releases_lock_on_process_death(tmp_path):
    """SIGKILL of the holder must never wedge the lock (crash safety)."""
    path = tmp_path / "x.lock"
    held = mp.Event()
    child = mp.Process(target=_hold_lock_and_die, args=(path, held))
    child.start()
    assert held.wait(10)
    assert FileLock(path).acquire(timeout_s=0) is False  # genuinely held
    os.kill(child.pid, 9)
    child.join(10)
    lock = FileLock(path)
    assert lock.acquire(timeout_s=5.0) is True
    lock.release()


# -- ResultStore cross-process eviction safety ------------------------------

def _fill_store(root, count, start=0):
    store = ResultStore(root)
    for i in range(start, start + count):
        task = cheap_task(i)
        store.put(store.fingerprint(task), {"i": i}, task_type="Floorplan")


def _evict_everything(root, done):
    # A *foreign* store instance (different process, owns none of the
    # entries) evicting to zero budget.
    store = ResultStore(root)
    removed = store.evict(0)
    done.put(removed)


def test_foreign_evictor_spares_fresh_entries(tmp_path):
    """The two-process evict/read race, fixed.

    Process A writes entries and expects to read them back promptly;
    process B concurrently evicts to a zero budget. B must spare A's
    *fresh* entries (the grace window) — before the fix, B's LRU walk
    could unlink them between A's put and get.
    """
    root = tmp_path / "store"
    _fill_store(root, 4)
    store_a = ResultStore(root)  # reader view, owns nothing
    keys = [store_a.fingerprint(cheap_task(i)) for i in range(4)]
    assert all(store_a.get(k) is not None for k in keys)

    done = mp.Queue()
    child = mp.Process(target=_evict_everything, args=(root, done))
    child.start()
    child.join(30)
    assert done.get(timeout=10) == 0  # everything was inside the window
    for key in keys:
        assert store_a.get(key) is not None, "fresh entry evicted by peer"


def test_foreign_evictor_removes_stale_entries(tmp_path):
    """The grace window protects *fresh* writes only — aged entries are
    fair game for any process (otherwise budgets would never enforce)."""
    root = tmp_path / "store"
    _fill_store(root, 3)
    old = time.time() - 3600
    store = ResultStore(root)
    for entry in root.rglob("*.pkl"):
        os.utime(entry, (old, old))
    # The newest-sorting entry is never a candidate (LRU last-survivor
    # rule), so "evict everything" leaves exactly one.
    assert store.evict(0) == 2
    assert store.stats().entries == 1


def test_own_writes_stay_evictable(tmp_path):
    """A single process's budget semantics are unchanged by the window:
    its *own* fresh writes still evict (oldest first) when over budget."""
    store = ResultStore(tmp_path / "store")
    for i in range(3):
        task = cheap_task(i)
        store.put(store.fingerprint(task), {"i": i}, task_type="Floorplan")
    assert store.evict(0) == 2  # all but the newest (last-survivor rule)


def test_evict_skips_when_peer_holds_mutation_lock(tmp_path):
    """Eviction is optional hygiene: a held lock means skip, not block."""
    root = tmp_path / "store"
    _fill_store(root, 2)
    store = ResultStore(root)
    guard = FileLock(root / ".lock")
    held, release = mp.Event(), mp.Event()
    child = mp.Process(
        target=_hold_lock, args=(root / ".lock", held, release)
    )
    child.start()
    try:
        assert held.wait(10)
        assert store.evict(0) == 0  # skipped, not deadlocked
    finally:
        release.set()
        child.join(10)
    assert guard.acquire(timeout_s=5.0)
    guard.release()


def _evict_with_crash_site(root, sites_dir):
    import repro.engine.faults as faults

    os.environ[faults.SITES_ENV] = str(sites_dir)
    store = ResultStore(root)
    old = time.time() - 3600
    for entry in sorted(root.rglob("*.pkl")):
        os.utime(entry, (old, old))
    store.evict(0)  # dies at the armed unlink


def test_crash_mid_eviction_recovers(tmp_path):
    """Kill -9 equivalent *between eviction unlinks*: the survivor store
    must verify clean, serve the remaining entries, and the mutation lock
    must not stay wedged (kernel release)."""
    from repro.engine.faults import FaultSpec, arm_sites, site_activations

    root = tmp_path / "store"
    _fill_store(root, 4)
    sites = tmp_path / "sites"
    arm_sites(sites, {
        "store-evict": FaultSpec(kind="crash", times=1, skip=1, exit_code=43)
    })
    child = mp.Process(target=_evict_with_crash_site, args=(root, sites))
    child.start()
    child.join(30)
    assert child.exitcode == 43
    assert site_activations(sites, "store-evict") == 2

    store = ResultStore(root)
    # Exactly one entry came off before the crash; the rest are intact.
    assert store.stats().entries == 3
    assert store.verify().clean
    # Lock released by the kernel: the next eviction proceeds normally.
    old = time.time() - 3600
    for entry in root.rglob("*.pkl"):
        os.utime(entry, (old, old))
    assert store.evict(0) == 2  # all but the newest (last-survivor rule)
