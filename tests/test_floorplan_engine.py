"""Incremental floorplan annealing engine (repro.floorplan.engine).

The contract under test: the incremental evaluator and the annealing loops
built on it are *bit-identical* to the frozen naive baselines of
:mod:`repro.floorplan.reference` — same per-move area/wirelength, same
accepted-move trajectory, same final floorplan — and multi-start runs merge
identically whether the restarts run serially or on the engine pool.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan.annealer import FloorplanResult, anneal_floorplan
from repro.floorplan.constrained import constrained_insert
from repro.floorplan.engine import _AnnealState
from repro.floorplan.geometry import Rect
from repro.floorplan.inserter import NewComponent
from repro.floorplan.placement import PlacedComponent
from repro.floorplan.reference import (
    naive_anneal_floorplan,
    naive_constrained_insert,
    naive_evaluate_floorplan,
)
from repro.floorplan.sequence_pair import SequencePair


def _draw_problem(data, max_n=10):
    n = data.draw(st.integers(min_value=2, max_value=max_n))
    widths = [
        data.draw(st.floats(min_value=0.2, max_value=5.0)) for _ in range(n)
    ]
    heights = [
        data.draw(st.floats(min_value=0.2, max_value=5.0)) for _ in range(n)
    ]
    nets = {}
    for _ in range(data.draw(st.integers(min_value=0, max_value=2 * n))):
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        b = data.draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            nets[(a, b)] = data.draw(st.floats(min_value=0.1, max_value=500.0))
    anchors = {}
    for _ in range(data.draw(st.integers(min_value=0, max_value=3))):
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        point = (
            data.draw(st.floats(min_value=0.0, max_value=8.0)),
            data.draw(st.floats(min_value=0.0, max_value=8.0)),
        )
        anchors[(a, point)] = data.draw(st.floats(min_value=0.1, max_value=100.0))
    return n, widths, heights, nets, anchors


class TestIncrementalEvaluator:
    """Property: the state matches the naive evaluator on any move sequence."""

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_matches_naive_reference_on_random_moves(self, data):
        n, widths, heights, nets, anchors = _draw_problem(data)
        positive = list(data.draw(st.permutations(range(n))))
        negative = list(data.draw(st.permutations(range(n))))
        sp = SequencePair(positive=tuple(positive), negative=tuple(negative))
        state = _AnnealState(sp, widths, heights, nets, anchors)

        # Initial evaluation matches a from-scratch one.
        area, wl, pos = naive_evaluate_floorplan(
            sp, widths, heights, nets, anchors
        )
        assert state.area == area
        assert state.wirelength == wl
        assert state.positions() == pos

        # Mirror every move on plain lists; after each move the state's
        # evaluation must equal the naive evaluation of the mirrored pair.
        for _ in range(data.draw(st.integers(min_value=1, max_value=12))):
            kind = data.draw(st.integers(min_value=0, max_value=4))
            state.begin_move()
            if kind == 0:
                i = data.draw(st.integers(min_value=0, max_value=n - 1))
                j = data.draw(st.integers(min_value=0, max_value=n - 1))
                state.swap_positive(i, j)
                positive[i], positive[j] = positive[j], positive[i]
            elif kind == 1:
                i = data.draw(st.integers(min_value=0, max_value=n - 1))
                j = data.draw(st.integers(min_value=0, max_value=n - 1))
                state.swap_negative(i, j)
                negative[i], negative[j] = negative[j], negative[i]
            elif kind == 2:
                i = data.draw(st.integers(min_value=0, max_value=n - 1))
                j = data.draw(st.integers(min_value=0, max_value=n - 1))
                u, v = positive[i], positive[j]
                state.swap_both(i, j)
                positive[i], positive[j] = v, u
                ni, nj = negative.index(v), negative.index(u)
                negative[ni], negative[nj] = negative[nj], negative[ni]
            else:
                block = data.draw(st.integers(min_value=0, max_value=n - 1))
                slot = data.draw(st.integers(min_value=0, max_value=n - 1))
                seq = positive if kind == 3 else negative
                if kind == 3:
                    state.relocate_positive(block, slot)
                else:
                    state.relocate_negative(block, slot)
                seq.remove(block)
                seq.insert(slot, block)

            cand_area, cand_wl = state.evaluate()
            mirror = SequencePair(
                positive=tuple(positive), negative=tuple(negative)
            )
            ref_area, ref_wl, ref_pos = naive_evaluate_floorplan(
                mirror, widths, heights, nets, anchors
            )
            assert cand_area == ref_area
            assert cand_wl == ref_wl
            assert state.sequences() == (mirror.positive, mirror.negative)

            if data.draw(st.booleans()):
                state.commit()
                assert state.positions() == ref_pos
            else:
                # Revert must restore sequences *and* cached terms exactly:
                # a no-op re-evaluation reproduces the pre-move values.
                state.revert()
                sp_now = SequencePair(
                    positive=tuple(state.positive),
                    negative=tuple(state.negative),
                )
                positive = list(sp_now.positive)
                negative = list(sp_now.negative)
                ref_area, ref_wl, _ = naive_evaluate_floorplan(
                    sp_now, widths, heights, nets, anchors
                )
                state.begin_move()
                area_now, wl_now = state.evaluate()
                assert area_now == ref_area
                assert wl_now == ref_wl
                state.revert()

    def test_rejects_length_mismatch(self):
        sp = SequencePair.identity(3)
        with pytest.raises(ValueError):
            _AnnealState(sp, [1.0, 1.0], [1.0, 1.0, 1.0])


class TestAnnealerTrajectory:
    """The full annealing loop is bit-identical to the frozen baseline."""

    @pytest.mark.parametrize("seed", [0, 1, 7, 23])
    def test_matches_naive_trajectory(self, seed):
        widths = [1.0, 2.0, 1.5, 1.0, 0.8, 1.3, 0.9, 1.7, 1.1, 0.6, 1.4, 2.2]
        heights = [1.5, 1.0, 1.2, 0.9, 1.1, 0.7, 1.6, 1.0, 1.3, 0.8, 1.0, 1.2]
        nets = {(0, 5): 100.0, (1, 4): 55.5, (2, 7): 210.0, (3, 9): 80.0,
                (6, 11): 140.0, (0, 10): 33.0, (5, 8): 61.0}
        anchors = {(2, (0.0, 0.0)): 50.0, (9, (4.0, 4.0)): 25.0}
        kwargs = dict(wirelength_weight=2.0, seed=seed, moves=500)
        fast = anneal_floorplan(widths, heights, nets, anchors, **kwargs)
        slow = naive_anneal_floorplan(widths, heights, nets, anchors, **kwargs)
        assert fast.positions == slow.positions
        assert fast.sequence_pair == slow.sequence_pair
        assert fast.area == slow.area
        assert fast.wirelength == slow.wirelength
        assert fast.cost == slow.cost
        assert fast.moves_evaluated == slow.moves_evaluated

    def test_matches_naive_without_nets(self):
        widths = heights = [1.0] * 9
        fast = anneal_floorplan(widths, heights, moves=400, seed=3)
        slow = naive_anneal_floorplan(widths, heights, moves=400, seed=3)
        assert fast == slow

    def test_returns_fresh_result(self):
        # The frozen-intent best snapshot is never mutated after the loop:
        # two calls return equal but distinct result objects, and the move
        # counter lands on the full budget without touching the snapshot.
        widths = [1.0, 2.0, 1.0, 1.5]
        heights = [1.0, 1.0, 2.0, 1.5]
        a = anneal_floorplan(widths, heights, moves=200, seed=7)
        b = anneal_floorplan(widths, heights, moves=200, seed=7)
        assert a == b
        assert a is not b
        assert a.positions is not b.positions
        assert a.moves_evaluated == 200


class TestConstrainedTrajectory:
    @pytest.mark.parametrize("seed", [0, 2, 11])
    def test_matches_naive_insertion(self, seed):
        cores = [
            PlacedComponent(f"core{i}", "core", Rect(1.1 * i, 0.2 * (i % 3), 1.0, 1.0), 0)
            for i in range(6)
        ]
        new = [
            NewComponent("sw0", "switch", 0.4, 0.4, (1.5, 0.8)),
            NewComponent("sw1", "switch", 0.3, 0.3, (4.0, 0.5)),
            NewComponent("sw2", "switch", 0.5, 0.5, (2.8, 1.4)),
        ]
        fast = constrained_insert(cores, new, seed=seed, moves=400)
        slow = naive_constrained_insert(cores, new, seed=seed, moves=400)
        assert [(c.name, c.rect, c.layer) for c in fast] == \
            [(c.name, c.rect, c.layer) for c in slow]


class TestMultiStart:
    WIDTHS = [1.0, 2.0, 1.5, 1.2, 0.8, 1.1, 1.9, 0.7]
    HEIGHTS = [1.3, 1.0, 1.4, 0.9, 1.2, 1.0, 0.8, 1.5]
    NETS = {(0, 3): 100.0, (1, 4): 50.0, (2, 5): 75.0, (6, 7): 120.0}

    def test_serial_and_parallel_identical(self):
        serial = anneal_floorplan(
            self.WIDTHS, self.HEIGHTS, self.NETS,
            moves=300, seed=3, restarts=3, jobs=1,
        )
        parallel = anneal_floorplan(
            self.WIDTHS, self.HEIGHTS, self.NETS,
            moves=300, seed=3, restarts=3, jobs=2,
        )
        assert serial == parallel

    def test_restart_zero_reproduces_single_start(self):
        # The multi-start winner can only improve on the single-start run,
        # and the total move count accumulates across restarts.
        single = anneal_floorplan(
            self.WIDTHS, self.HEIGHTS, self.NETS, moves=300, seed=3
        )
        multi = anneal_floorplan(
            self.WIDTHS, self.HEIGHTS, self.NETS,
            moves=300, seed=3, restarts=4,
        )
        assert multi.cost <= single.cost
        assert multi.moves_evaluated == 4 * single.moves_evaluated
        if multi.restart_index == 0:
            assert multi.positions == single.positions

    def test_restart_streams_are_decorrelated(self):
        runs = [
            anneal_floorplan(
                self.WIDTHS, self.HEIGHTS, self.NETS,
                moves=300, seed=3, restarts=4,
            )
        ]
        # At least the winning restart is a real choice, not always 0.
        costs = set()
        for restart in range(4):
            from repro.floorplan.annealer import _anneal_restart
            from repro.floorplan.sequence_pair import SequencePair as SP

            result = _anneal_restart(
                self.WIDTHS, self.HEIGHTS, dict(self.NETS), {},
                wirelength_weight=1.0, seed=3, moves=300,
                initial_temperature=1.0, cooling=0.995,
                initial_sp=SP.grid(len(self.WIDTHS)), restart=restart,
            )
            costs.add(result.cost)
        assert len(costs) > 1  # different streams explore differently
        assert runs[0].cost == min(costs)

    def test_invalid_restarts_rejected(self):
        with pytest.raises(ValueError):
            anneal_floorplan([1.0], [1.0], restarts=0)

    def test_constrained_multistart_serial_parallel_identical(self):
        cores = [
            PlacedComponent(f"core{i}", "core", Rect(1.2 * i, 0.0, 1.0, 1.0), 0)
            for i in range(5)
        ]
        new = [
            NewComponent("sw0", "switch", 0.4, 0.4, (2.0, 0.6)),
            NewComponent("sw1", "switch", 0.3, 0.3, (4.2, 0.4)),
        ]
        serial = constrained_insert(
            cores, new, seed=5, moves=250, restarts=3, jobs=1
        )
        parallel = constrained_insert(
            cores, new, seed=5, moves=250, restarts=3, jobs=2
        )
        assert [(c.name, c.rect) for c in serial] == \
            [(c.name, c.rect) for c in parallel]

    def test_constrained_multistart_picks_best_restart(self):
        from repro.floorplan.constrained import _insertion_restart

        cores = [
            PlacedComponent(f"core{i}", "core", Rect(1.2 * i, 0.0, 1.0, 1.0), 0)
            for i in range(5)
        ]
        new = [NewComponent("sw0", "switch", 0.4, 0.4, (2.0, 0.6))]
        kwargs = dict(seed=5, moves=250, displacement_weight=1.0,
                      initial_temperature=1.0, cooling=0.995)
        # The merge must select the lowest-cost restart (ties to lowest
        # index): rebuild the winner by hand and compare placements.
        restarts = [
            _insertion_restart(cores, new, restart=r, **kwargs)
            for r in range(3)
        ]
        best_cost, best_sp = min(restarts, key=lambda cs: cs[0])
        multi = constrained_insert(cores, new, seed=5, moves=250, restarts=3)
        single_winner = constrained_insert(
            cores, new, seed=5, moves=250, restarts=1
        ) if best_sp == restarts[0][1] else None
        from repro.floorplan.sequence_pair import seqpair_to_positions

        widths = [c.rect.width for c in cores] + [c.width for c in new]
        heights = [c.rect.height for c in cores] + [c.height for c in new]
        expected = seqpair_to_positions(best_sp, widths, heights)
        got = [(c.rect.x, c.rect.y) for c in multi]
        assert got == expected
        assert best_cost == min(cs[0] for cs in restarts)
        if single_winner is not None:
            assert [(c.name, c.rect) for c in multi] == \
                [(c.name, c.rect) for c in single_winner]


class TestFloorplanResultCompat:
    def test_restart_index_defaults_to_zero(self):
        result = anneal_floorplan([2.0], [3.0])
        assert result.restart_index == 0
        assert isinstance(result, FloorplanResult)
