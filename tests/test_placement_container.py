"""Placed-component containers (repro.floorplan.placement)."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan.geometry import Rect
from repro.floorplan.placement import ChipFloorplan, PlacedComponent


def _fp():
    fp = ChipFloorplan()
    fp.add(PlacedComponent("a", "core", Rect(0, 0, 2, 2), 0))
    fp.add(PlacedComponent("b", "core", Rect(3, 0, 1, 1), 0))
    fp.add(PlacedComponent("sw0", "switch", Rect(0, 0, 0.5, 0.5), 1))
    return fp


class TestPlacedComponent:
    def test_center(self):
        c = PlacedComponent("a", "core", Rect(1, 1, 2, 2), 0)
        assert c.center == (2.0, 2.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FloorplanError):
            PlacedComponent("a", "blob", Rect(0, 0, 1, 1), 0)

    def test_negative_layer_rejected(self):
        with pytest.raises(FloorplanError):
            PlacedComponent("a", "core", Rect(0, 0, 1, 1), -1)


class TestChipFloorplan:
    def test_lookup(self):
        fp = _fp()
        assert fp.by_name("b").rect.x == 3
        assert fp.has("sw0") and not fp.has("zz")
        with pytest.raises(FloorplanError):
            fp.by_name("zz")

    def test_layer_queries(self):
        fp = _fp()
        assert fp.num_layers == 2
        assert len(fp.in_layer(0)) == 2
        assert [c.name for c in fp.of_kind("switch")] == ["sw0"]

    def test_bboxes_and_area(self):
        fp = _fp()
        bbox0 = fp.layer_bbox(0)
        assert bbox0.x2 == 4.0 and bbox0.y2 == 2.0
        # Die area: max layer bbox (layer 0 dominates).
        assert fp.die_area_mm2() == pytest.approx(8.0)

    def test_component_area(self):
        fp = _fp()
        assert fp.total_component_area_mm2("core") == pytest.approx(5.0)
        assert fp.total_component_area_mm2() == pytest.approx(5.25)

    def test_legality(self):
        fp = _fp()
        assert fp.is_legal()
        fp.add(PlacedComponent("bad", "core", Rect(0.5, 0.5, 1, 1), 0))
        assert not fp.is_legal()
        assert ("a", "bad") in fp.overlaps()

    def test_overlap_on_other_layer_legal(self):
        fp = _fp()
        # Overlaps core "a" on layer 0, but lives on layer 1 (clear of sw0).
        fp.add(PlacedComponent("c", "core", Rect(1, 1, 2, 2), 1))
        assert fp.is_legal()

    def test_empty(self):
        fp = ChipFloorplan()
        assert fp.num_layers == 0
        assert fp.die_area_mm2() == 0.0
        assert fp.is_legal()
