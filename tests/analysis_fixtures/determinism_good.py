"""Fixture: determinism-clean code — all randomness via make_rng,
timing via the monotonic clocks. Never imported."""

import time

from repro.rng import make_rng


def sample(config, n):
    rng = make_rng(config.seed, "sampling")
    t0 = time.perf_counter()
    draws = [rng.random() for _ in range(n)]
    elapsed = time.perf_counter() - t0
    deadline = time.monotonic() + 5.0
    return draws, elapsed, deadline
