"""Fixture: suppression handling — used, reasonless, unknown, unused.

Never imported — parsed in tests/test_analysis.py with the determinism
checker active. Each ``# expect: CODE`` comment pins a *framework*
finding; the first line's suppression is correct and must silence its
RPL202 without any finding at all.
"""

import time


def stamps():
    ok = time.time()  # repro: noqa[RPL202] -- fixture: sanctioned clock read
    return ok


def bad_suppressions():
    a = time.time()  # repro: noqa[RPL202]  # expect: RPL002
    b = time.time()  # repro: noqa[RPL999] -- no checker owns RPL999  # expect: RPL003, RPL202
    c = 1 + 1  # repro: noqa[RPL202] -- nothing here to suppress  # expect: RPL001
    return a, b, c
