"""Fixture: lock discipline observed in every sanctioned way.
Never imported — parsed by the lock-discipline checker."""

from repro.engine.locks import (
    FileLock, acquires_lock, asserts_lock, requires_lock,
)


@acquires_lock("store")
def take_store_lock(root):
    lock = FileLock(root / ".lock")
    lock.acquire()
    return lock


@asserts_lock("store")
def verify_store_lock(holder):
    if holder is None:
        raise RuntimeError("store lock not held")


@requires_lock("store")
def walk_and_unlink(root):
    for path in root.glob("*"):
        path.unlink()


@requires_lock("store")
def chained_internal(root):
    # requires -> requires: the obligation moves up to our caller.
    walk_and_unlink(root)


def evict(root):
    lock = take_store_lock(root)
    try:
        walk_and_unlink(root)
    finally:
        lock.release()


def repair(root, holder):
    verify_store_lock(holder)
    walk_and_unlink(root)


def inline_lock(root):
    with FileLock(root / ".lock"):
        walk_and_unlink(root)
