"""Fixture: one stage violating every stage-inputs rule.

Never imported — parsed by the stage-inputs checker in
tests/test_analysis.py. Each ``# expect: CODE`` comment pins the exact
finding code(s) and line the checker must report.
"""


class Stage:
    pass


def helper(ctx, flow_state):
    return flow_state.hidden_read + ctx.config.hidden_knob  # expect: RPL102, RPL103


class BadStage(Stage):
    name = "bad"
    salt = "v1"
    cacheable = True
    context_inputs = ("graph",)  # expect: RPL105
    config_inputs = ("alpha",)
    state_inputs = ("topology",)
    state_outputs = ("score",)

    def run(self, ctx, state):
        state.score = ctx.library.cost(state.topology)  # expect: RPL101
        state.extra = ctx.config.alpha  # expect: RPL104
        use(ctx.config)  # expect: RPL106
        return helper(ctx, state)


def use(config):
    return config
