"""Fixture: every pickling violation in a ``*Task`` payload.

Never imported — parsed by the pickling checker in
tests/test_analysis.py. Each ``# expect: CODE`` comment pins the exact
finding code(s) and line the checker must report.
"""

import threading
from dataclasses import dataclass, field


def ticket_stream():
    n = 0
    while True:
        yield n
        n += 1


@dataclass
class LeakyTask:
    key: str
    transform = staticmethod(lambda x: x)  # expect: RPL301
    tickets = ticket_stream()  # expect: RPL302
    guard = threading.Lock()  # expect: RPL303
    sink = open("/dev/null", "w")  # expect: RPL304
    factory_made: object = field(default_factory=lambda: object())  # expect: RPL301

    def attach(self, path):
        def local_helper(x):
            return x + 1

        self.hook = local_helper  # expect: RPL301
        self.numbers = (n * n for n in range(10))  # expect: RPL302
        self.lock = threading.RLock()  # expect: RPL303
        self.handle = open(path)  # expect: RPL304
