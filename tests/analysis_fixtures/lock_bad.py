"""Fixture: lock-discipline violations.

Never imported — parsed by the lock-discipline checker in
tests/test_analysis.py. Each ``# expect: CODE`` comment pins the exact
finding code(s) and line the checker must report.
"""

from repro.engine.locks import acquires_lock, requires_lock


@acquires_lock("store")
def take_store_lock(root):
    return object()


@requires_lock("store")
def walk_and_unlink(root):
    for path in root.glob("*"):
        path.unlink()


def naked_call(root):
    walk_and_unlink(root)  # expect: RPL401


def acquire_too_late(root):
    walk_and_unlink(root)  # expect: RPL401
    take_store_lock(root)


@requires_lock  # expect: RPL402
def anonymous_requirement(root):
    pass
