"""Fixture: a pickling-clean task payload (frozen dataclass, plain data).
Never imported."""

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class CleanTask:
    key: str
    weights: Tuple[float, ...] = (1.0, 0.5)
    options: Dict[str, int] = field(default_factory=dict)

    def describe(self):
        return f"{self.key}: {len(self.weights)} weights"


class NotATaskResult:
    """Name ends in Result — outside the payload convention, unchecked."""

    def __init__(self):
        self.callback = lambda: None
