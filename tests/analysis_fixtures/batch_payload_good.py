"""Fixture: a pickling-clean *batched* task payload. Never imported.

Mirrors the shape of :class:`repro.engine.tasks.BatchSimulationTask`: a
frozen dataclass whose replication axis is a plain tuple of seeds, whose
expansion helpers are ordinary methods, and whose fields are all plain
data — nothing a process-pool pickle refuses.
"""

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class CleanBatchTask:
    key: str
    seeds: Tuple[int, ...] = (0,)
    cycles: int = 20_000
    injection_scale: float = 1.0
    drain_limit: Optional[int] = None

    def expand(self):
        # A method returning per-replication payloads is fine: bound
        # methods are not *bound into* the payload, they live on the class.
        return tuple(
            dataclasses.replace(self, seeds=(seed,)) for seed in self.seeds
        )

    def narrow(self, indices: Tuple[int, ...]) -> "CleanBatchTask":
        return dataclasses.replace(
            self, seeds=tuple(self.seeds[i] for i in indices)
        )
