"""Fixture: pickling violations specific to *batched* task payloads.

Never imported — parsed by the pickling checker in
tests/test_analysis.py. The failure mode this pins: a batch task tempts
its author to carry the replication axis as something lazy (a seed
generator, a schedule stream) or to cache per-batch scratch state (RNG
locks, trace sinks) on the payload — all of which die as opaque
``PicklingError``\\ s inside the pool, K replications at a time.
"""

import threading
from dataclasses import dataclass, field
from typing import Tuple


def seed_stream(start):
    n = start
    while True:
        yield n
        n += 1


@dataclass
class LazyBatchTask:
    key: str
    seeds = seed_stream(0)  # expect: RPL302
    widen = staticmethod(lambda k: k * 2)  # expect: RPL301
    rng_guard = threading.Lock()  # expect: RPL303
    trace_sink = open("/dev/null", "w")  # expect: RPL304

    def narrow(self, indices: Tuple[int, ...]):
        def pick(i):
            return self.key, i

        self.picker = pick  # expect: RPL301
        self.schedules = ((s, s + 1) for s in indices)  # expect: RPL302
