"""Fixture: every determinism violation.

Never imported — parsed by the determinism checker in
tests/test_analysis.py. Each ``# expect: CODE`` comment pins the exact
finding code(s) and line the checker must report.
"""

import os
import time
import random  # expect: RPL201
from random import shuffle  # expect: RPL201
from datetime import datetime

import numpy as np


def draws(n):
    values = [random.random() for _ in range(n)]
    when = time.time()  # expect: RPL202
    stamp = datetime.now()  # expect: RPL202
    entropy = os.urandom(8)  # expect: RPL202
    noise = np.random.rand(n)  # expect: RPL203
    np.random.seed(0)  # expect: RPL203
    rng = np.random.default_rng(7)  # expect: RPL204
    other = random.Random(13)  # expect: RPL204
    return values, when, stamp, entropy, noise, rng, other
