"""Fixture: a stage whose declarations exactly match what run() touches.

Never imported — parsed by the stage-inputs checker in tests/test_analysis.py.
"""

_SHARED_CONFIG_INPUTS = ("alpha", "beta")


def helper(ctx, state):
    return ctx.library.cost(state.topology)


class Stage:
    pass


class GoodStage(Stage):
    name = "good"
    salt = "v1"
    cacheable = True
    context_inputs = ("graph", "library")
    config_inputs = _SHARED_CONFIG_INPUTS
    state_inputs = ("topology",)
    state_outputs = ("score", "topology")

    def run(self, ctx, state):
        weight = ctx.config.alpha + ctx.config.beta
        base = helper(ctx, state)
        state.score = weight * base + self._extra(ctx)
        # Read-after-own-write: not a cache input.
        state.topology = state.score and state.topology

    def _extra(self, ctx):
        return len(ctx.graph.edges)


class WholeConfigStage(Stage):
    name = "whole-config"
    salt = "v1"
    cacheable = True
    context_inputs = ("graph",)
    config_inputs = "*"
    state_inputs = ("topology",)
    state_outputs = ("score",)

    def run(self, ctx, state):
        state.score = evaluate(state.topology, ctx.graph, ctx.config)


class UncachedStage(Stage):
    """Not cacheable: free to read whatever it likes."""

    name = "uncached"
    cacheable = False
    context_inputs = ()

    def run(self, ctx, state):
        state.anything = ctx.whatever + ctx.config.mystery


def evaluate(topology, graph, config):
    return 0
