"""Wormhole simulator internals (repro.noc.simulator + repro.noc.reference).

Construction details and end-to-end latency checks run on the public
:class:`WormholeSimulator` (the array-based engine); the per-flit
allocation unit tests exercise the frozen naive reference's `_try_send`,
whose semantics the engine reproduces bit for bit (see test_simengine).
"""

import pytest

from repro.models.library import default_library
from repro.noc.reference import ReferenceWormholeSimulator, _Flit
from repro.noc.simulator import WormholeSimulator
from repro.noc.topology import Topology


def _linear_topology(length_mm=0.5):
    """core0 -> sw0 -> sw1 -> core1 with a single routed flow."""
    topo = Topology(frequency_mhz=400.0, width_bits=32)
    s0 = topo.add_switch(0)
    s1 = topo.add_switch(0)
    s0.x, s0.y = 1.0, 0.0
    s1.x, s1.y = 2.0, 0.0
    topo.attach_core(0, 0, 0)
    topo.attach_core(1, 1, 0)
    link = topo.add_switch_link(0, 1)
    inj, ej = topo.injection_link(0), topo.ejection_link(1)
    for l in topo.links:
        l.length_mm = length_mm
    topo.record_route((0, 1), [inj.id, link.id, ej.id], [0, 1], 400.0)
    return topo


class TestConstructionDetails:
    def test_injection_probability_from_bandwidth(self):
        topo = _linear_topology()
        sim = WormholeSimulator(topo, packet_length_flits=4)
        # 400 MB/s on a 1600 MB/s link with 4-flit packets: 400/1600/4.
        assert sim._inject_prob[(0, 1)] == pytest.approx(400 / 1600 / 4)

    def test_link_delay_includes_pipelining(self):
        topo = _linear_topology(length_mm=6.0)  # 3 stages at 400 MHz
        sim = WormholeSimulator(topo)
        for link in topo.links:
            assert sim._link_delay[link.id] == 3

    def test_short_links_one_cycle(self):
        topo = _linear_topology(length_mm=0.1)
        sim = WormholeSimulator(topo)
        assert all(d == 1 for d in sim._link_delay)

    def test_inputs_per_link_maps_switch_fabric(self):
        topo = _linear_topology()
        sim = WormholeSimulator(topo)
        table = sim._inputs_per_link()
        inj = topo.injection_link(0)
        ej = topo.ejection_link(1)
        sw_link = [l for l in topo.links if not l.is_core_link][0]
        # The sw0->sw1 link is fed by sw0's only input: core0's injection.
        assert table[sw_link.id] == [inj.id]
        # The ejection link is fed by sw1's inputs: the sw link plus core1's
        # own injection link (core1 is attached to sw1).
        inj1 = topo.injection_link(1)
        assert table[ej.id] == sorted([inj1.id, sw_link.id])
        # Injection links are not outputs of any switch.
        assert inj.id not in table


class TestWormholeAllocation:
    def test_head_flit_allocates_and_tail_releases(self):
        topo = _linear_topology()
        sim = ReferenceWormholeSimulator(topo)
        allocation = {l.id: None for l in topo.links}
        in_flight = [[] for _ in topo.links]
        from collections import deque

        in_flight = [deque() for _ in topo.links]
        head = _Flit((0, 1), 7, True, False, 0, 0)
        body = _Flit((0, 1), 7, False, False, 0, 0)
        tail = _Flit((0, 1), 7, False, True, 0, 0)
        other = _Flit((0, 1), 8, True, False, 0, 0)
        link = 0
        assert sim._try_send(head, link, allocation, in_flight, 0)
        assert allocation[link] == ((0, 1), 7)
        # A competing head is refused while the packet holds the link.
        assert not sim._try_send(other, link, allocation, in_flight, 1)
        # Body flits of the owner pass.
        assert sim._try_send(body, link, allocation, in_flight, 1)
        # The tail releases the allocation.
        assert sim._try_send(tail, link, allocation, in_flight, 2)
        assert allocation[link] is None
        assert sim._try_send(other, link, allocation, in_flight, 3)

    def test_one_flit_per_cycle_per_link(self):
        topo = _linear_topology()
        sim = ReferenceWormholeSimulator(topo)
        from collections import deque

        allocation = {l.id: None for l in topo.links}
        in_flight = [deque() for _ in topo.links]
        head = _Flit((0, 1), 7, True, False, 0, 0)
        body = _Flit((0, 1), 7, False, False, 0, 0)
        assert sim._try_send(head, 0, allocation, in_flight, 5)
        # Same cycle, same link: refused.
        assert not sim._try_send(body, 0, allocation, in_flight, 5)
        # Next cycle: accepted.
        assert sim._try_send(body, 0, allocation, in_flight, 6)


class TestEndToEnd:
    def test_single_packet_latency_exact(self):
        """One lone packet: latency = links*delay + serialisation, exactly."""
        topo = _linear_topology(length_mm=0.1)  # all links 1 cycle
        sim = WormholeSimulator(topo, packet_length_flits=2, seed=0)
        # Effectively one packet: tiny injection probability, long horizon.
        sim._inject_prob[(0, 1)] = 0.0005
        stats = sim.run(cycles=15_000, warmup=0, injection_scale=1.0)
        assert stats.packets_delivered >= 1
        # 3 links x 1 cycle + 1 extra flit of serialisation = 4 cycles.
        assert stats.avg_packet_latency == pytest.approx(4.0, abs=0.75)

    def test_pipelined_link_raises_latency(self):
        topo_short = _linear_topology(length_mm=0.1)
        topo_long = _linear_topology(length_mm=6.0)
        results = []
        for topo in (topo_short, topo_long):
            sim = WormholeSimulator(topo, packet_length_flits=2, seed=1)
            sim._inject_prob[(0, 1)] = 0.001
            results.append(sim.run(cycles=10_000, warmup=0).avg_packet_latency)
        assert results[1] > results[0] + 3.0  # 3 links x 2 extra stages
