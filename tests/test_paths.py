"""Path computation (repro.core.paths, Sec. VI / Algorithm 3)."""

import pytest

from repro.core.assignment import assignment_from_blocks
from repro.core.config import SynthesisConfig
from repro.core.paths import build_topology_skeleton, compute_paths
from repro.errors import PathComputationError
from repro.graphs.comm_graph import build_comm_graph
from repro.models.library import default_library
from repro.noc.deadlock import ChannelDependencyGraph
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec


def _setup(layers, flows, blocks, config=None, mode="mean"):
    cores = CoreSpec(cores=[
        Core(f"C{i}", 1, 1, 1.5 * (i % 3), 1.5 * (i // 3), layer)
        for i, layer in enumerate(layers)
    ])
    comm = CommSpec(flows=[TrafficFlow(*f) for f in flows])
    graph = build_comm_graph(cores, comm)
    config = config or SynthesisConfig(max_ill=10)
    library = default_library()
    assignment = assignment_from_blocks(blocks, graph, mode, "phase1")
    centers = {i: c.center for i, c in enumerate(cores)}
    topo = build_topology_skeleton(assignment, graph, library, config, centers)
    return topo, graph, library, config, centers


class TestSkeleton:
    def test_switch_positions_are_core_centroids(self):
        topo, *_ = _setup([0, 0], [("C0", "C1", 100, 8)], [[0, 1]])
        sw = topo.switches[0]
        assert sw.x == pytest.approx((0.5 + 2.0) / 2)

    def test_oversized_switch_rejected(self):
        layers = [0] * 14
        flows = [("C0", "C1", 100, 8)]
        with pytest.raises(PathComputationError, match="size limit"):
            _setup(layers, flows, [list(range(14))])

    def test_ill_precheck_in_skeleton(self):
        # 6 cores on L0/L2 all attached to a single switch on L1: each core
        # link crosses a boundary; with max_ill=2 the skeleton must fail.
        layers = [0, 0, 0, 2, 2, 2]
        flows = [("C0", "C3", 100, 8)]
        cfg = SynthesisConfig(max_ill=2)
        with pytest.raises(PathComputationError, match="max_ill"):
            _setup(layers, flows, [[0, 1, 2, 3, 4, 5]], cfg)


class TestRouting:
    def test_same_switch_flow_single_hop(self):
        topo, graph, lib, cfg, centers = _setup(
            [0, 0], [("C0", "C1", 100, 8)], [[0, 1]]
        )
        compute_paths(topo, graph, lib, cfg, centers)
        assert topo.switch_routes[(0, 1)] == [0]
        assert len(topo.routes[(0, 1)]) == 2  # inj + ej

    def test_two_switch_flow_creates_link(self):
        topo, graph, lib, cfg, centers = _setup(
            [0, 0, 1, 1],
            [("C0", "C2", 100, 8)],
            [[0, 1], [2, 3]],
        )
        compute_paths(topo, graph, lib, cfg, centers)
        assert topo.switch_routes[(0, 2)] == [0, 1]
        assert topo.num_switch_links == 1
        assert topo.num_vertical_links >= 1

    def test_reuses_link_with_capacity(self):
        topo, graph, lib, cfg, centers = _setup(
            [0, 0, 1, 1],
            [("C0", "C2", 400, 8), ("C1", "C3", 400, 8)],
            [[0, 1], [2, 3]],
        )
        compute_paths(topo, graph, lib, cfg, centers)
        assert topo.num_switch_links == 1  # both flows share it
        link = [l for l in topo.links if not l.is_core_link][0]
        assert link.load_mbps == pytest.approx(800.0)

    def test_opens_parallel_link_when_full(self):
        topo, graph, lib, cfg, centers = _setup(
            [0, 0, 1, 1],
            [("C0", "C2", 1000, 8), ("C1", "C3", 1000, 8)],
            [[0, 1], [2, 3]],
        )
        compute_paths(topo, graph, lib, cfg, centers)
        assert topo.num_switch_links == 2  # 2000 > 1600 capacity

    def test_flow_exceeding_capacity_rejected(self):
        topo, graph, lib, cfg, centers = _setup(
            [0, 0], [("C0", "C1", 2000, 8)], [[0, 1]]
        )
        with pytest.raises(PathComputationError, match="capacity"):
            compute_paths(topo, graph, lib, cfg, centers)

    def test_adjacent_only_blocks_layer_skip(self):
        # Switches on L0 and L2 only; flow must fail (no L1 switch).
        topo, graph, lib, cfg, centers = _setup(
            [0, 0, 2, 2],
            [("C0", "C2", 100, 8)],
            [[0, 1], [2, 3]],
        )
        with pytest.raises(PathComputationError):
            compute_paths(topo, graph, lib, cfg, centers)

    def test_multi_hop_through_middle_layer(self):
        topo, graph, lib, cfg, centers = _setup(
            [0, 0, 1, 1, 2, 2],
            [("C0", "C4", 100, 8)],
            [[0, 1], [2, 3], [4, 5]],
        )
        compute_paths(topo, graph, lib, cfg, centers)
        assert topo.switch_routes[(0, 4)] == [0, 1, 2]

    def test_routes_are_deadlock_free(self):
        topo, graph, lib, cfg, centers = _setup(
            [0, 0, 1, 1, 2, 2],
            [
                ("C0", "C2", 100, 8), ("C2", "C4", 100, 8),
                ("C4", "C0", 100, 8), ("C1", "C5", 100, 8),
                ("C5", "C3", 100, 8), ("C3", "C1", 100, 8),
            ],
            [[0, 1], [2, 3], [4, 5]],
        )
        compute_paths(topo, graph, lib, cfg, centers)
        cdg = ChannelDependencyGraph()
        for (src, dst), link_ids in topo.routes.items():
            flow = graph.edges[(src, dst)]
            assert not cdg.creates_cycle(link_ids, flow.message_type)
            cdg.add_path(link_ids, flow.message_type)
        assert cdg.is_deadlock_free()

    def test_latency_constraint_enforced(self):
        # A 3-hop route cannot meet a 2-cycle latency budget.
        topo, graph, lib, cfg, centers = _setup(
            [0, 0, 1, 1, 2, 2],
            [("C0", "C4", 100, 2)],
            [[0, 1], [2, 3], [4, 5]],
        )
        with pytest.raises(PathComputationError):
            compute_paths(topo, graph, lib, cfg, centers)

    def test_max_ill_forces_failure(self):
        cfg = SynthesisConfig(max_ill=0)
        topo, graph, lib, cfg, centers = _setup(
            [0, 0, 1, 1],
            [("C0", "C2", 100, 8)],
            [[0, 1], [2, 3]],
            cfg,
        )
        with pytest.raises(PathComputationError):
            compute_paths(topo, graph, lib, cfg, centers)

    def test_routes_validated_and_capacity_checked(self):
        topo, graph, lib, cfg, centers = _setup(
            [0, 0, 1, 1],
            [("C0", "C2", 100, 8), ("C3", "C1", 50, 8)],
            [[0, 1], [2, 3]],
        )
        compute_paths(topo, graph, lib, cfg, centers)
        topo.validate_routes()  # must not raise
        assert topo.check_capacity(cfg.utilisation_cap) == []
        assert set(topo.routes) == {(0, 2), (3, 1)}
