"""Phase 2 candidate generation (repro.core.phase2, Algorithm 2)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.phase2 import (
    minimum_switches_per_layer,
    phase2_candidate,
    phase2_candidates,
)
from repro.errors import SynthesisError
from repro.graphs.comm_graph import build_comm_graph
from repro.models.library import default_library
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec


def _graph(n=9, layers=3):
    cores = CoreSpec(cores=[
        Core(f"C{i}", 1, 1, 1.5 * (i % 3), 1.5 * (i // 3), i % layers)
        for i in range(n)
    ])
    comm = CommSpec(flows=[
        TrafficFlow("C0", "C3", 300, 8),
        TrafficFlow("C1", "C4", 200, 8),
        TrafficFlow("C3", "C6", 250, 8),
        TrafficFlow("C2", "C5", 150, 8),
    ])
    return build_comm_graph(cores, comm)


class TestMinimumSwitches:
    def test_small_layers_need_one(self):
        g = _graph()
        mins = minimum_switches_per_layer(g, SynthesisConfig(), default_library())
        assert mins == [1, 1, 1]

    def test_large_layer_needs_more(self):
        # 14 cores in one layer; max switch size at 400 MHz is 11.
        cores = CoreSpec(cores=[
            Core(f"C{i}", 1, 1, 1.2 * (i % 4), 1.2 * (i // 4), 0)
            for i in range(14)
        ])
        comm = CommSpec(flows=[TrafficFlow("C0", "C1", 100, 8)])
        g = build_comm_graph(cores, comm)
        mins = minimum_switches_per_layer(g, SynthesisConfig(), default_library())
        assert mins == [2]


class TestCandidates:
    def test_every_core_assigned_same_layer_switch(self):
        g = _graph()
        a = phase2_candidate(g, SynthesisConfig(), default_library(), 0)
        assert a.phase == "phase2"
        c2s = a.core_to_switch
        for core in range(g.n):
            sw = c2s[core]
            assert a.switch_layers[sw] == g.layers[core]

    def test_increment_grows_all_layers(self):
        g = _graph()
        lib = default_library()
        a0 = phase2_candidate(g, SynthesisConfig(), lib, 0)
        a1 = phase2_candidate(g, SynthesisConfig(), lib, 1)
        assert a1.num_switches == a0.num_switches + 3  # +1 per layer

    def test_increment_capped_at_cores_per_layer(self):
        g = _graph()
        lib = default_library()
        a_max = phase2_candidate(g, SynthesisConfig(), lib, 99)
        assert a_max.num_switches == g.n  # one switch per core

    def test_candidate_sweep_sizes(self):
        g = _graph()
        cands = list(phase2_candidates(g, SynthesisConfig(), default_library()))
        sizes = [c.num_switches for c in cands]
        assert sizes == [3, 6, 9]

    def test_switch_count_range_filter(self):
        g = _graph()
        cfg = SynthesisConfig(switch_count_range=(4, 8))
        cands = list(phase2_candidates(g, cfg, default_library()))
        assert [c.num_switches for c in cands] == [6]

    def test_empty_layer_rejected(self):
        cores = CoreSpec(cores=[
            Core("A", 1, 1, 0, 0, 0),
            Core("B", 1, 1, 2, 0, 2),
        ])
        comm = CommSpec(flows=[TrafficFlow("A", "B", 100, 8)])
        # Layer 1 is empty: contiguity is normally enforced by
        # validate_specs; phase2 raises its own error.
        from repro.graphs.comm_graph import CommGraph

        g = build_comm_graph(cores, comm)
        with pytest.raises(SynthesisError):
            minimum_switches_per_layer(g, SynthesisConfig(), default_library())
