"""The staged synthesis pipeline (repro.core.pipeline)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.pipeline import (
    DEFAULT_STAGE_NAMES,
    CandidateOutcome,
    CandidateRequest,
    FlowContext,
    LatencyVerifyStage,
    Phase1ThetaRequeuePolicy,
    Phase2SingleRoundPolicy,
    Pipeline,
    Stage,
    StageTimings,
    build_pipeline,
    register_stage,
    run_synthesis,
    vertical_link_specs,
)
from repro.core.synthesis import SunFloor3D, synthesize
from repro.errors import SynthesisError
from repro.floorplan.geometry import Rect
from repro.floorplan.placement import ChipFloorplan, PlacedComponent
from repro.noc.topology import Topology
from repro.spec.core_spec import Core, CoreSpec


class CountingVerifyStage(LatencyVerifyStage):
    """Top-level (picklable) stage that counts its executions."""

    calls = 0

    def run(self, ctx, state):
        type(self).calls += 1
        super().run(ctx, state)


class TestPipelineConstruction:
    def test_default_stage_sequence(self):
        pipeline = build_pipeline()
        assert pipeline.stage_names == DEFAULT_STAGE_NAMES

    def test_unknown_stage_rejected(self):
        with pytest.raises(SynthesisError):
            build_pipeline(["precheck", "nope"])

    def test_override_unknown_slot_rejected(self):
        with pytest.raises(SynthesisError):
            build_pipeline(overrides={"nope": LatencyVerifyStage()})

    def test_registry_override_substitutes_one_stage(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        CountingVerifyStage.calls = 0
        pipeline = build_pipeline(overrides={"verify": CountingVerifyStage()})
        assert pipeline.stage_names == DEFAULT_STAGE_NAMES
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        tool = SunFloor3D(core_spec, comm_spec, config=cfg, pipeline=pipeline)
        result = tool.synthesize()
        assert not result.is_empty
        assert CountingVerifyStage.calls >= len(result.points)

    def test_register_stage_requires_name(self):
        with pytest.raises(SynthesisError):
            @register_stage
            class Nameless(Stage):
                pass


class TestStageTimings:
    def test_timings_collected_per_stage(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        timings = StageTimings()
        cfg = SynthesisConfig(max_ill=10)
        result = synthesize(core_spec, comm_spec, config=cfg, timings=timings)
        assert not result.is_empty
        # Every candidate hits the precheck; every valid point reached metrics.
        assert timings.count("precheck") >= len(result.points)
        assert timings.count("metrics") == len(result.points)
        for name in DEFAULT_STAGE_NAMES:
            assert timings.total_s(name) >= 0.0
        report = timings.report()
        for name in DEFAULT_STAGE_NAMES:
            assert name in report
        assert set(timings.as_dict()) == set(DEFAULT_STAGE_NAMES)

    def test_tool_records_last_timings(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        tool = SunFloor3D(core_spec, comm_spec,
                          config=SynthesisConfig(max_ill=10))
        assert tool.last_stage_timings is None
        tool.synthesize()
        assert tool.last_stage_timings.count("routing") > 0


class TestSerialParallelEquivalence:
    def test_jobs_produce_identical_results(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        cfg = SynthesisConfig(max_ill=10)
        serial = synthesize(core_spec, comm_spec, config=cfg, jobs=1)
        parallel = synthesize(core_spec, comm_spec, config=cfg, jobs=4)
        assert len(serial.points) == len(parallel.points) > 0
        for a, b in zip(serial.points, parallel.points):
            assert a.assignment == b.assignment
            assert a.metrics.total_power_mw == b.metrics.total_power_mw
            assert a.metrics.avg_latency_cycles == b.metrics.avg_latency_cycles
            assert a.metrics.per_flow_latency == b.metrics.per_flow_latency
            assert a.die_area_mm2 == b.die_area_mm2
            assert a.topology.routes == b.topology.routes
        assert serial.unmet_switch_counts == parallel.unmet_switch_counts

    def test_parallel_collects_stage_timings(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 4))
        timings = StageTimings()
        result = synthesize(core_spec, comm_spec, config=cfg, jobs=2,
                            timings=timings)
        assert not result.is_empty
        assert timings.count("metrics") == len(result.points)

    def test_parallel_phase2_matches_serial(self, small_specs):
        core_spec, comm_spec = small_specs
        cfg = SynthesisConfig(max_ill=12, phase="phase2")
        serial = synthesize(core_spec, comm_spec, config=cfg, jobs=1)
        parallel = synthesize(core_spec, comm_spec, config=cfg, jobs=3)
        assert [p.assignment for p in serial.points] == \
            [p.assignment for p in parallel.points]
        assert [p.total_power_mw for p in serial.points] == \
            [p.total_power_mw for p in parallel.points]
        assert serial.unmet_switch_counts == parallel.unmet_switch_counts


class TestPhase2UnmetTracking:
    def test_count_met_by_later_candidate_is_not_unmet(self):
        """Regression: a failing candidate must not leave its switch count
        in the unmet set when another candidate at that count succeeds."""
        from repro.core.design_point import SynthesisResult

        policy = Phase2SingleRoundPolicy()
        requests = [
            CandidateRequest(None, 3),
            CandidateRequest(None, 3),
            CandidateRequest(None, 4),
        ]
        outcomes = [
            CandidateOutcome(point=None, failed_stage="routing"),
            CandidateOutcome(point=object()),  # count 3 met after all
            CandidateOutcome(point=None, failed_stage="verify"),
        ]
        assert policy.next_round(None, requests, outcomes) == []
        result = SynthesisResult()
        policy.finalize(None, result)
        assert result.unmet_switch_counts == [4]

    def test_end_to_end_unmet_disjoint_from_met(self, small_specs):
        core_spec, comm_spec = small_specs
        cfg = SynthesisConfig(max_ill=12, phase="phase2")
        result = synthesize(core_spec, comm_spec, config=cfg)
        met = {p.assignment.num_switches for p in result.points}
        assert not met & set(result.unmet_switch_counts)


class TestPhase1RequeuePolicy:
    def test_theta_exhaustion_records_unmet(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        ctx = FlowContext.build(
            core_spec, comm_spec,
            config=SynthesisConfig(max_ill=10, theta_min=1.0, theta_max=1.0,
                                   theta_step=1.0, switch_count_range=(2, 3)),
        )
        policy = Phase1ThetaRequeuePolicy()
        requests = policy.initial_requests(ctx)
        assert [r.count for r in requests] == [2, 3]
        fail_all = [CandidateOutcome(point=None)] * len(requests)
        retry = policy.next_round(ctx, requests, fail_all)
        # One θ value: every failed count requeues exactly once, scaled.
        assert [r.count for r in retry] == [2, 3]
        assert all(r.theta == 1.0 for r in retry)
        assert policy.next_round(ctx, retry, fail_all) == []
        from repro.core.design_point import SynthesisResult

        result = SynthesisResult()
        policy.finalize(ctx, result)
        assert result.unmet_switch_counts == [2, 3]

    def test_success_stops_requeue(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        ctx = FlowContext.build(
            core_spec, comm_spec,
            config=SynthesisConfig(max_ill=10, switch_count_range=(2, 2)),
        )
        policy = Phase1ThetaRequeuePolicy()
        requests = policy.initial_requests(ctx)
        ok = [CandidateOutcome(point=object())] * len(requests)
        assert policy.next_round(ctx, requests, ok) == []


class TestVerticalLinkSpecs:
    def _two_layer_gap_topology(self):
        """One core on layer 0 attached to a switch two layers up."""
        topo = Topology(frequency_mhz=400.0, width_bits=32)
        topo.add_switch(layer=2)
        topo.attach_core(0, 0, core_layer=0)
        return topo

    def test_missing_endpoint_raises_with_name(self):
        topo = self._two_layer_gap_topology()
        core_spec = CoreSpec(cores=[Core("C0", 1, 1, 0, 0, 0)])
        with pytest.raises(SynthesisError, match="sw0"):
            vertical_link_specs(topo, ChipFloorplan(), core_spec)

    def test_present_endpoint_anchors_spec(self):
        topo = self._two_layer_gap_topology()
        core_spec = CoreSpec(cores=[Core("C0", 1, 1, 0, 0, 0)])
        floorplan = ChipFloorplan()
        floorplan.add(PlacedComponent(
            name="sw0", kind="switch", rect=Rect(2.0, 3.0, 1.0, 1.0), layer=2,
        ))
        specs = vertical_link_specs(topo, floorplan, core_spec)
        assert len(specs) == 2  # injection + ejection both span 2 layers
        assert all(s.top_center == (2.5, 3.5) for s in specs)
        assert all((s.lo_layer, s.hi_layer) == (0, 2) for s in specs)


class TestEngineStagePassthrough:
    def test_synthesis_task_runs_substituted_stages(self, tiny_specs):
        """The sweep-level task path (engine/suites) honours a stage
        substitution, so experiments can swap a stage suite-wide."""
        from repro.engine.tasks import SynthesisTask, run_task

        core_spec, comm_spec = tiny_specs
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        stages = tuple(
            CountingVerifyStage() if name == "verify" else name
            for name in DEFAULT_STAGE_NAMES
        )
        CountingVerifyStage.calls = 0
        substituted = run_task(SynthesisTask(
            key="s", core_spec=core_spec, comm_spec=comm_spec, config=cfg,
            stages=stages,
        ))
        default = run_task(SynthesisTask(
            key="d", core_spec=core_spec, comm_spec=comm_spec, config=cfg,
        ))
        assert substituted.ok and default.ok
        assert CountingVerifyStage.calls >= len(substituted.result.points)
        assert [p.total_power_mw for p in substituted.result.points] == \
            [p.total_power_mw for p in default.result.points]


class TestCompatibilityWrappers:
    def test_evaluate_assignment_still_works(self, tiny_specs):
        from repro.core.phase1 import phase1_candidate

        core_spec, comm_spec = tiny_specs
        tool = SunFloor3D(core_spec, comm_spec,
                          config=SynthesisConfig(max_ill=10))
        assignment = phase1_candidate(tool.graph, tool.config, 2)
        point = tool.evaluate_assignment(assignment)
        assert point is not None
        assert point.assignment == assignment
        assert tool._try_point(assignment) is not None

    def test_context_attributes_exposed(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        tool = SunFloor3D(core_spec, comm_spec)
        assert tool.core_spec is core_spec
        assert tool.graph.n == len(core_spec.names)
        assert len(tool._core_centers) == tool.graph.n
        assert tool._die_bounds[0] > 0
