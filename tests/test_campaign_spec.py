"""Declarative campaign specs: exhaustive validation and compilation."""

from __future__ import annotations

import json

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    compile_campaign,
    load_campaign_file,
    validate_campaign,
)
from repro.cli import main
from repro.errors import CampaignError, CampaignSpecError

SWEEP = {
    "name": "sweep-a", "kind": "sweep", "benchmark": "d26_media",
    "grid": {"frequencies_mhz": [400, 800]},
    "config": {"max_ill": 20, "switch_count_range": [3, 4]},
}
SIM = {
    "name": "sim-a", "kind": "sim", "benchmark": "d26_media",
    "scenarios": ["bernoulli", "hotspot:3"], "seeds": [0, 1],
    "injection_scales": [0.2], "cycles": 600, "warmup": 60,
    "config": {"switch_count_range": [3, 4]},
}


def paths_of(issues):
    return [issue.path for issue in issues]


def test_valid_specs_produce_no_issues():
    assert validate_campaign(SWEEP) == []
    assert validate_campaign(SIM) == []


def test_minimal_spec_defaults():
    spec = CampaignSpec.from_dict({"name": "tiny"})
    assert spec.kind == "sweep"
    assert spec.benchmark == "d26_media"
    assert spec.dims == "3d"
    assert spec.task_count == 1  # empty grid = the single base point


def test_every_problem_reported_with_its_path():
    """The satellite requirement: ALL errors, each with a JSON path."""
    issues = validate_campaign({
        "kind": "sweep",                                  # name missing
        "benchmark": "not-a-benchmark",
        "dims": "4d",
        "grid": {
            "frequencies_mhz": [400, -1, "x"],
            "alphas": [2.0],
            "link_widths_bits": [0],
            "switch_count_ranges": [[4, 2]],
            "bogus_dim": [1],
        },
        "config": {"max_ill": -3, "no_such_field": 1},
        "stages": ["skeleton", "not-a-stage"],
        "mystery": True,
    })
    got = paths_of(issues)
    for expected in (
        "name", "benchmark", "dims",
        "grid.frequencies_mhz[1]", "grid.frequencies_mhz[2]",
        "grid.alphas[0]", "grid.link_widths_bits[0]",
        "grid.switch_count_ranges[0]", "grid.bogus_dim",
        "config.max_ill", "config.no_such_field",
        "stages[1]", "mystery",
    ):
        assert expected in got, f"missing issue for {expected}: {got}"
    assert "stages[0]" not in got  # the valid stage is not flagged


def test_cross_field_config_interaction_reported():
    issues = validate_campaign({
        "name": "x",
        "config": {"floorplan_restarts": 3, "floorplan_jobs": 1},
    })
    assert "config.floorplan_restarts" in paths_of(issues)


def test_sim_keys_rejected_on_sweep_and_vice_versa():
    issues = validate_campaign({"name": "x", "kind": "sweep", "seeds": [1]})
    assert any(
        i.path == "seeds" and "sim" in i.message for i in issues
    )
    issues = validate_campaign({
        "name": "x", "kind": "sim", "grid": {"frequencies_mhz": [400]},
    })
    assert any(
        i.path == "grid" and "sweep" in i.message for i in issues
    )


def test_sim_traffic_validation():
    issues = validate_campaign({
        "name": "x", "kind": "sim",
        "scenarios": ["bernoulli", "marsattacks"],
        "seeds": [0, -1], "injection_scales": [0.0],
        "cycles": 100, "warmup": 100,
    })
    got = paths_of(issues)
    for expected in (
        "scenarios[1]", "seeds[1]", "injection_scales[0]", "warmup",
    ):
        assert expected in got, f"missing issue for {expected}: {got}"


def test_non_dict_spec_is_one_issue():
    issues = validate_campaign([1, 2])
    assert paths_of(issues) == ["$"]


def test_from_dict_raises_with_all_issues():
    with pytest.raises(CampaignSpecError) as excinfo:
        CampaignSpec.from_dict({"benchmark": "zzz", "dims": "5d"})
    assert len(excinfo.value.issues) == 3  # name + benchmark + dims
    message = str(excinfo.value)
    assert "benchmark" in message and "dims" in message


def test_round_trip_through_to_dict():
    for data in (SWEEP, SIM):
        spec = CampaignSpec.from_dict(data)
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again == spec


def test_task_count():
    assert CampaignSpec.from_dict(SWEEP).task_count == 2
    assert CampaignSpec.from_dict(SIM).task_count == 4  # 2 scen × 2 seeds


def test_compile_sweep_applies_overrides():
    tasks = compile_campaign(CampaignSpec.from_dict(SWEEP))
    assert len(tasks) == 2
    assert {t.config.frequency_mhz for t in tasks} == {400.0, 800.0}
    assert all(t.config.max_ill == 20 for t in tasks)
    assert all(t.config.switch_count_range == (3, 4) for t in tasks)


def test_compile_is_deterministic():
    spec = CampaignSpec.from_dict(SWEEP)
    assert compile_campaign(spec) == compile_campaign(spec)


def test_compile_2d_forces_phase1():
    spec = CampaignSpec.from_dict({**SWEEP, "dims": "2d"})
    tasks = compile_campaign(spec)
    assert all(t.config.phase == "phase1" for t in tasks)


@pytest.mark.slow
def test_compile_sim_builds_simulation_tasks(tmp_path):
    from repro.engine.store import ResultStore
    from repro.engine.tasks import SimulationTask

    store = ResultStore(tmp_path / "store")
    spec = CampaignSpec.from_dict(SIM)
    tasks = compile_campaign(spec, store=store)
    assert len(tasks) == 4
    assert all(isinstance(t, SimulationTask) for t in tasks)
    assert {t.key[0] for t in tasks} == {"bernoulli", "hotspot(core 3)"} or \
           len({t.key for t in tasks}) == 4
    # Synthesis was checkpointed: recompiling is a store hit, same tasks.
    again = compile_campaign(spec, store=store)
    assert store.hits >= 1
    assert [t.key for t in again] == [t.key for t in tasks]


def test_load_campaign_file_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SWEEP))
    assert load_campaign_file(path) == CampaignSpec.from_dict(SWEEP)


def test_load_campaign_file_yaml(tmp_path):
    yaml = pytest.importorskip("yaml")
    path = tmp_path / "spec.yaml"
    path.write_text(yaml.safe_dump(SWEEP))
    assert load_campaign_file(path) == CampaignSpec.from_dict(SWEEP)


def test_load_campaign_file_bad_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text("{not json")
    with pytest.raises(CampaignError, match="invalid JSON"):
        load_campaign_file(path)


def test_load_campaign_file_missing(tmp_path):
    with pytest.raises(CampaignError, match="cannot read"):
        load_campaign_file(tmp_path / "nope.json")


# -- CLI: campaign validate -------------------------------------------------

def test_cli_validate_ok(tmp_path, capsys):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SWEEP))
    assert main(["campaign", "validate", str(path)]) == 0
    out = capsys.readouterr().out
    assert "ok" in out and "sweep-a" in out


def test_cli_validate_invalid_exits_2_listing_everything(tmp_path, capsys):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps({
        "benchmark": "zzz",
        "grid": {"frequencies_mhz": [-1, -2]},
    }))
    assert main(["campaign", "validate", str(path)]) == 2
    err = capsys.readouterr().err
    for fragment in (
        "name", "benchmark",
        "grid.frequencies_mhz[0]", "grid.frequencies_mhz[1]",
    ):
        assert fragment in err, f"{fragment} not reported: {err}"
