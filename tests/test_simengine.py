"""Array-based simulation engine vs the frozen naive reference.

The contract of the :mod:`repro.noc.simengine` overhaul (the PR 3 / engine
playbook): for identical seeds, scenarios and parameters the engine and
:class:`repro.noc.reference.ReferenceWormholeSimulator` produce
*bit-identical* statistics and per-cycle delivery traces. Plus the two
model fixes both implementations share: at most one flit leaves a link per
cycle, and runs drain in-flight packets after the injection horizon.
"""

import pytest

from _simtopo import contended_topology, cross_contended_topology

from repro.engine import run_tasks
from repro.engine.tasks import SimulationTask, run_task
from repro.noc.reference import ReferenceWormholeSimulator
from repro.noc.simulator import WormholeSimulator


def _both(topo, *, seed=0, packet_len=4, depth=4, cycles=1500, warmup=200,
          scale=1.0, scenario=None, drain_limit=None):
    """Run engine + reference with traces; returns (stats, trace) pairs."""
    te, tr = [], []
    eng = WormholeSimulator(
        topo, seed=seed, packet_length_flits=packet_len, buffer_depth=depth
    ).run(cycles=cycles, warmup=warmup, injection_scale=scale,
          scenario=scenario, drain_limit=drain_limit, trace=te)
    ref = ReferenceWormholeSimulator(
        topo, seed=seed, packet_length_flits=packet_len, buffer_depth=depth
    ).run(cycles=cycles, warmup=warmup, injection_scale=scale,
          scenario=scenario, drain_limit=drain_limit, trace=tr)
    return (eng, te), (ref, tr)


class TestTrajectoryIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("scale", [0.3, 1.0, 3.0])
    def test_identical_under_bernoulli(self, contended_topo, seed, scale):
        (eng, te), (ref, tr) = _both(contended_topo, seed=seed, scale=scale)
        assert eng == ref
        assert te == tr

    @pytest.mark.parametrize(
        "scenario", ["hotspot", "hotspot:2", "bursty", "bursty:20",
                     "scaled:1.5", "scaled:0"]
    )
    def test_identical_under_every_scenario(self, contended_topo, scenario):
        (eng, te), (ref, tr) = _both(
            contended_topo, seed=3, scale=1.5, scenario=scenario
        )
        assert eng == ref
        assert te == tr

    @pytest.mark.parametrize("packet_len,depth", [(1, 1), (2, 4), (6, 2)])
    def test_identical_across_flit_and_buffer_shapes(
        self, contended_topo, packet_len, depth
    ):
        (eng, te), (ref, tr) = _both(
            contended_topo, seed=5, scale=2.0,
            packet_len=packet_len, depth=depth,
        )
        assert eng == ref
        assert te == tr

    @pytest.mark.parametrize("drain_limit", [0, 37, None])
    def test_identical_drain_accounting(self, contended_topo, drain_limit):
        (eng, _), (ref, _) = _both(
            contended_topo, seed=7, scale=2.0, drain_limit=drain_limit
        )
        assert eng == ref
        assert eng.drain_cycles == ref.drain_cycles

    def test_event_skip_matches_sparse_traffic(self):
        """Near-empty schedules exercise the engine's cycle-skipping."""
        topo = contended_topology(shared_length_mm=12.0)
        (eng, te), (ref, tr) = _both(
            topo, seed=11, scale=0.02, cycles=4000, warmup=0
        )
        assert eng == ref
        assert te == tr
        assert eng.packets_delivered >= 1


class TestLinkDeliveryCap:
    """Regression for the over-delivery bug: a link's pipeline used to dump
    its whole backlog into the downstream buffer once back-pressure
    cleared, exceeding the 1-flit-per-cycle link bandwidth.

    The scenario needs an output contended by *two* input buffers (so the
    shared link's buffer head is refused while the link keeps delivering)
    and a second output interleaved on the same buffer (so two credits can
    free in one cycle): exactly ``cross_contended_topology`` saturated at
    ``buffer_depth >= 2``. The pre-fix ``while``-drain delivers two flits
    on 100+ (link, cycle) pairs of this run; the fixed model never exceeds
    one.
    """

    def _saturate(self, sim_cls, seed=1):
        topo = cross_contended_topology()
        sim = sim_cls(topo, buffer_depth=2, packet_length_flits=4, seed=seed)
        # Saturate every flow: the shared sw0->sw1 link and core 2's
        # ejection link back-pressure constantly.
        for flow in sim._inject_prob:
            sim._inject_prob[flow] = 1.0
        trace = []
        stats = sim.run(cycles=1200, warmup=100, trace=trace)
        return stats, trace

    @pytest.mark.parametrize(
        "sim_cls", [WormholeSimulator, ReferenceWormholeSimulator]
    )
    def test_at_most_one_flit_per_link_per_cycle(self, sim_cls):
        stats, trace = self._saturate(sim_cls)
        assert stats.flits_delivered > 500  # genuinely saturated
        per_link_cycle = {}
        for _event, cycle, lid, _pid in trace:
            key = (lid, cycle)
            per_link_cycle[key] = per_link_cycle.get(key, 0) + 1
        assert max(per_link_cycle.values()) == 1

    def test_backpressure_actually_stalls_deliveries(self):
        """The saturated run must exercise the buggy path: some flits leave
        their link *later* than another flit's delivery on the same cycle
        elsewhere — i.e. deliveries are spread, not all back-to-back."""
        stats, trace = self._saturate(WormholeSimulator)
        # Core 2's ejection link is the bottleneck: it must be busy nearly
        # every cycle of the steady state (the two competing inputs keep
        # its allocation pinned), which is what starves the shared link.
        eject_cycles = {c for ev, c, _lid, _pid in trace if ev == "eject"}
        assert len(eject_cycles) > 900

    @pytest.mark.parametrize("seed", [1, 2])
    def test_saturated_runs_still_identical(self, seed):
        eng_stats, eng_trace = self._saturate(WormholeSimulator, seed)
        ref_stats, ref_trace = self._saturate(ReferenceWormholeSimulator, seed)
        assert eng_stats == ref_stats
        assert eng_trace == ref_trace


class TestDrainPhase:
    def test_light_load_delivers_everything(self, contended_topo):
        stats = WormholeSimulator(contended_topo, seed=2).run(
            cycles=3000, warmup=300, injection_scale=0.3
        )
        assert stats.packets_injected > 20
        assert stats.delivery_ratio == 1.0
        assert stats.packets_delivered == stats.packets_injected

    def test_drain_limit_zero_restores_horizon_cutoff(self, contended_topo):
        drained = WormholeSimulator(contended_topo, seed=2).run(
            cycles=3000, warmup=300, injection_scale=0.3
        )
        cut = WormholeSimulator(contended_topo, seed=2).run(
            cycles=3000, warmup=300, injection_scale=0.3, drain_limit=0
        )
        assert cut.drain_cycles == 0
        assert cut.packets_delivered <= drained.packets_delivered

    def test_drain_bounded_under_saturation(self, contended_topo):
        stats = WormholeSimulator(contended_topo, seed=3).run(
            cycles=1000, warmup=100, injection_scale=10.0, drain_limit=250
        )
        assert stats.drain_cycles <= 250


class TestSimulationTask:
    def _tasks(self, topo):
        return [
            SimulationTask(
                key=(seed, scale), topology=topo, seed=seed,
                cycles=1200, warmup=200, injection_scale=scale,
                scenario=scenario,
            )
            for seed, scale, scenario in [
                (0, 0.4, None), (1, 0.4, "hotspot"),
                (0, 1.0, "bursty"), (2, 1.5, None),
            ]
        ]

    def test_task_matches_direct_run(self, contended_topo):
        task = self._tasks(contended_topo)[0]
        result = run_task(task)
        assert result.ok
        direct = WormholeSimulator(contended_topo, seed=0).run(
            cycles=1200, warmup=200, injection_scale=0.4
        )
        assert result.result == direct

    def test_serial_parallel_bit_identical(self, contended_topo):
        tasks = self._tasks(contended_topo)
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=2)
        assert [r.key for r in serial] == [r.key for r in parallel]
        assert [r.result for r in serial] == [r.result for r in parallel]
