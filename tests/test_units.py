"""Unit conversions (repro.units)."""

import pytest

from repro import units


class TestLinkCapacity:
    def test_32bit_400mhz_is_1600_mbps(self):
        assert units.link_capacity_mbps(32, 400.0) == pytest.approx(1600.0)

    def test_scales_linearly_with_width(self):
        assert units.link_capacity_mbps(64, 400.0) == pytest.approx(
            2 * units.link_capacity_mbps(32, 400.0)
        )

    def test_scales_linearly_with_frequency(self):
        assert units.link_capacity_mbps(32, 800.0) == pytest.approx(
            2 * units.link_capacity_mbps(32, 400.0)
        )

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            units.link_capacity_mbps(0, 400.0)


class TestFlitsPerSecond:
    def test_full_capacity_is_frequency(self):
        # A fully loaded 32-bit 400 MHz link moves one flit per cycle.
        cap = units.link_capacity_mbps(32, 400.0)
        assert units.flits_per_second(cap, 32) == pytest.approx(400.0)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            units.flits_per_second(100.0, -1)


class TestBitsPerCycle:
    def test_basic(self):
        # 400 MB/s at 400 MHz: 1 byte per cycle = 8 bits.
        assert units.mbps_to_bits_per_cycle(400.0, 400.0) == pytest.approx(8.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            units.mbps_to_bits_per_cycle(400.0, 0.0)


class TestEnergyPower:
    def test_mega_ops_energy_to_mw(self):
        # 1000 Mops/s at 1 pJ each = 1 mW.
        assert units.mega_ops_energy_to_mw(1000.0, 1.0) == pytest.approx(1.0)

    def test_pj_per_s(self):
        assert units.pj_per_s_to_mw(1e9) == pytest.approx(1.0)
