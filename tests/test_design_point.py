"""Design points and results (repro.core.design_point)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.design_point import SynthesisResult
from repro.core.synthesis import synthesize
from repro.errors import SynthesisError


@pytest.fixture(scope="module")
def result(request):
    from tests.conftest import grid_core_spec
    from repro.spec.comm_spec import CommSpec, TrafficFlow

    core_spec = grid_core_spec(6, 2)
    comm_spec = CommSpec(flows=[
        TrafficFlow("C0", "C1", 200, 8),
        TrafficFlow("C1", "C2", 150, 8),
        TrafficFlow("C2", "C3", 400, 8),
        TrafficFlow("C3", "C4", 100, 8),
        TrafficFlow("C4", "C5", 300, 8),
    ])
    return synthesize(core_spec, comm_spec, config=SynthesisConfig(max_ill=10))


class TestSynthesisResult:
    def test_best_power_is_minimum(self, result):
        best = result.best_power()
        assert all(best.total_power_mw <= p.total_power_mw for p in result.points)

    def test_best_latency_is_minimum(self, result):
        best = result.best_latency()
        assert all(
            best.avg_latency_cycles <= p.avg_latency_cycles for p in result.points
        )

    def test_best_unknown_objective(self, result):
        with pytest.raises(SynthesisError):
            result.best("area")

    def test_by_switch_count(self, result):
        some = result.points[0]
        points = result.by_switch_count(some.switch_count)
        assert some in points

    def test_empty_result_raises(self):
        with pytest.raises(SynthesisError):
            SynthesisResult().best_power()
        with pytest.raises(SynthesisError):
            SynthesisResult().best_latency()

    def test_pareto_front_contains_both_optima(self, result):
        front = result.pareto_front()
        assert result.best_power() in front
        assert result.best_latency() in front

    def test_pareto_front_no_dominated_points(self, result):
        front = result.pareto_front()
        for p in front:
            for q in result.points:
                dominates = (
                    q.total_power_mw < p.total_power_mw
                    and q.avg_latency_cycles <= p.avg_latency_cycles
                    and q.die_area_mm2 <= p.die_area_mm2
                )
                assert not dominates

    def test_summary_mentions_key_metrics(self, result):
        text = result.best_power().summary()
        assert "power" in text and "latency" in text and "mm^2" in text

    def test_objective_value(self, result):
        p = result.points[0]
        assert p.objective_value() == p.total_power_mw
