"""Core-to-switch assignments (repro.core.assignment)."""

import pytest

from repro.core.assignment import (
    Assignment,
    assignment_from_blocks,
    core_link_ill_usage,
    switch_layer_for_block,
    violates_ill_precheck,
)
from repro.errors import SynthesisError
from repro.graphs.comm_graph import build_comm_graph
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec


def _graph(layers=(0, 0, 1, 1, 2, 2)):
    cores = CoreSpec(cores=[
        Core(f"C{i}", 1, 1, 1.5 * i, 0, layer) for i, layer in enumerate(layers)
    ])
    comm = CommSpec(flows=[TrafficFlow("C0", "C5", 100, 8)])
    return build_comm_graph(cores, comm)


class TestAssignment:
    def test_duplicate_core_rejected(self):
        with pytest.raises(SynthesisError):
            Assignment(blocks=((0, 1), (1, 2)), switch_layers=(0, 0), phase="phase1")

    def test_length_mismatch_rejected(self):
        with pytest.raises(SynthesisError):
            Assignment(blocks=((0,),), switch_layers=(0, 1), phase="phase1")

    def test_core_to_switch(self):
        a = Assignment(blocks=((0, 2), (1,)), switch_layers=(0, 0), phase="phase1")
        assert a.core_to_switch == {0: 0, 2: 0, 1: 1}
        assert a.num_switches == 2

    def test_describe(self):
        a = Assignment(blocks=((0,),), switch_layers=(0,), phase="phase1", theta=7.0)
        assert "theta=7" in a.describe()


class TestSwitchLayer:
    def test_mean_mode(self):
        layers = [0, 0, 1, 1, 2, 2]
        assert switch_layer_for_block([0, 1], layers, "mean") == 0
        assert switch_layer_for_block([0, 4], layers, "mean") == 1
        assert switch_layer_for_block([0, 1, 5], layers, "mean") == 1  # 2/3 -> 1

    def test_majority_mode(self):
        layers = [0, 0, 1, 1, 2, 2]
        assert switch_layer_for_block([0, 1, 4], layers, "majority") == 0
        assert switch_layer_for_block([2, 3, 0], layers, "majority") == 1

    def test_majority_tie_lowest(self):
        layers = [0, 0, 1, 1, 2, 2]
        assert switch_layer_for_block([0, 2], layers, "majority") == 0

    def test_empty_block_rejected(self):
        with pytest.raises(SynthesisError):
            switch_layer_for_block([], [0], "mean")

    def test_unknown_mode_rejected(self):
        with pytest.raises(SynthesisError):
            switch_layer_for_block([0], [0], "median")


class TestIllPrecheck:
    def test_same_layer_no_usage(self):
        g = _graph()
        a = assignment_from_blocks([[0, 1], [2, 3], [4, 5]], g, "mean", "phase1")
        assert core_link_ill_usage(a, g) == {}
        assert not violates_ill_precheck(a, g, max_ill=0)

    def test_cross_layer_counts_two_per_core(self):
        g = _graph()
        # Block mixing L0 and L2 cores: switch lands on L1 (mean).
        a = assignment_from_blocks([[0, 4], [1, 2, 3, 5]], g, "mean", "phase1")
        usage = core_link_ill_usage(a, g)
        # Core 0 (L0) to switch (L1): 2 links cross (0,1). Core 4 (L2): 2
        # links cross (1,2). Plus block 2's cores relative to its layer.
        assert usage[(0, 1)] >= 2
        assert usage[(1, 2)] >= 2

    def test_violation_detected(self):
        g = _graph()
        a = assignment_from_blocks([[0, 4], [1, 2, 3, 5]], g, "mean", "phase1")
        assert violates_ill_precheck(a, g, max_ill=1)
        assert not violates_ill_precheck(a, g, max_ill=100)

    def test_multi_layer_span_counts_every_boundary(self):
        g = _graph((0, 2, 0, 2, 0, 2))
        # A single core on L0 attached to a switch forced to L2.
        a = Assignment(
            blocks=((0,), (1, 2, 3, 4, 5)),
            switch_layers=(2, 1),
            phase="phase1",
        )
        usage = core_link_ill_usage(a, g)
        assert usage[(0, 1)] >= 2 and usage[(1, 2)] >= 2
