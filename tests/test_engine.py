"""The parallel design-space exploration engine (repro.engine)."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.bench.synthetic import synthetic_benchmark
from repro.core.config import SynthesisConfig
from repro.engine import (
    GridPoint,
    ParameterGrid,
    ProfileRecorder,
    SynthesisTask,
    Timer,
    build_tasks,
    resolve_jobs,
    run_task,
    run_tasks,
)
from repro.errors import EngineError, SpecError, SynthesisError
from repro.noc.export import design_point_to_dict


@pytest.fixture(scope="module")
def design():
    """Small seeded synthetic design (bench/synthetic.py) shared here."""
    bench = synthetic_benchmark(
        10, "random", num_layers=2, seed=11, floorplan_moves=300
    )
    return bench.core_spec_3d, bench.comm_spec


@pytest.fixture(scope="module")
def config():
    return SynthesisConfig(max_ill=10, switch_count_range=(2, 4))


def _canonical(results):
    """Byte-comparable form of a merged engine run."""
    return json.dumps(
        [
            {
                "key": str(r.key),
                "points": [design_point_to_dict(p) for p in r.result.points],
                "unmet": r.result.unmet_switch_counts,
            }
            for r in results
        ],
        sort_keys=True,
    )


class TestGrid:
    def test_cross_product_order(self):
        grid = ParameterGrid(frequencies_mhz=(200.0, 400.0), alphas=(0.5,))
        points = grid.points()
        assert points == [
            GridPoint(frequency_mhz=200.0, alpha=0.5),
            GridPoint(frequency_mhz=400.0, alpha=0.5),
        ]
        assert grid.size == 2

    def test_empty_dimensions_inherit_base(self):
        grid = ParameterGrid()
        assert grid.points() == [GridPoint()]
        base = SynthesisConfig(frequency_mhz=123.0)
        assert GridPoint().apply(base) is base

    def test_apply_overrides(self):
        base = SynthesisConfig()
        cfg = GridPoint(frequency_mhz=250.0, link_width_bits=64).apply(base)
        assert cfg.frequency_mhz == 250.0
        assert cfg.link_width_bits == 64
        assert cfg.alpha == base.alpha

    def test_validation_up_front_all_dimensions(self):
        with pytest.raises(SynthesisError, match="frequency"):
            ParameterGrid(frequencies_mhz=(400.0, -1.0)).points()
        with pytest.raises(SynthesisError, match="alpha"):
            ParameterGrid(alphas=(0.5, 1.5)).points()
        with pytest.raises(SynthesisError, match="width"):
            ParameterGrid(link_widths_bits=(0,)).points()
        with pytest.raises(SynthesisError, match="switch_count_range"):
            ParameterGrid(switch_count_ranges=((3, 1),)).points()

    def test_infeasible_point_marked_skip(self, design):
        core_spec, comm_spec = design
        # 10 MHz on 32-bit links: 40 MB/s capacity, far below the flows.
        tasks = build_tasks(
            core_spec, comm_spec,
            ParameterGrid(frequencies_mhz=(10.0, 400.0)),
        )
        assert tasks[0].skip and "capacity" in tasks[0].skip_reason
        assert not tasks[1].skip

    def test_label(self):
        point = GridPoint(frequency_mhz=400.0, alpha=0.5)
        assert "400" in point.label() and "0.5" in point.label()
        assert GridPoint().label() == "base"


class TestTasks:
    def test_task_pickles(self, design, config):
        core_spec, comm_spec = design
        tasks = build_tasks(
            core_spec, comm_spec, ParameterGrid(frequencies_mhz=(400.0,)),
            config,
        )
        clone = pickle.loads(pickle.dumps(tasks[0]))
        assert clone.key == tasks[0].key
        assert clone.config == tasks[0].config

    def test_skip_task_returns_empty_result(self, design, config):
        core_spec, comm_spec = design
        task = SynthesisTask(
            key="x", core_spec=core_spec, comm_spec=comm_spec,
            config=config, skip=True,
        )
        result = run_task(task)
        assert result.skipped and result.ok
        assert result.result.is_empty

    def test_error_captured_not_raised(self, design):
        core_spec, comm_spec = design
        task = SynthesisTask(
            key="bad", core_spec=core_spec, comm_spec=comm_spec,
            config=SynthesisConfig(switch_count_range=(1, 1), phase="phase1"),
            library="not a library",  # type: ignore[arg-type]
        )
        result = run_task(task)
        assert not result.ok
        assert result.error is not None


class TestExecutor:
    def test_resolve_jobs(self, monkeypatch):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1
        assert resolve_jobs(None) >= 1
        monkeypatch.setenv("REPRO_ENGINE_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(0) == 5
        monkeypatch.setenv("REPRO_ENGINE_JOBS", "nope")
        with pytest.raises(EngineError):
            resolve_jobs(None)
        monkeypatch.delenv("REPRO_ENGINE_JOBS")
        with pytest.raises(EngineError):
            resolve_jobs(-2)

    def test_chunk_size_validated(self, design, config):
        core_spec, comm_spec = design
        tasks = build_tasks(
            core_spec, comm_spec, ParameterGrid(frequencies_mhz=(400.0,)),
            config,
        )
        with pytest.raises(EngineError):
            run_tasks(tasks, chunk_size=0)

    def test_parallel_matches_serial_byte_identical(self, design, config):
        """The regression gate: fan-out must not change a single value."""
        core_spec, comm_spec = design
        grid = ParameterGrid(
            frequencies_mhz=(300.0, 450.0), alphas=(0.4, 0.8)
        )
        tasks = build_tasks(core_spec, comm_spec, grid, config)
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=2)
        assert _canonical(serial) == _canonical(parallel)
        assert [r.key for r in parallel] == [t.key for t in tasks]

    def test_parallel_chunked_matches_serial(self, design, config):
        core_spec, comm_spec = design
        grid = ParameterGrid(frequencies_mhz=(300.0, 400.0, 500.0))
        tasks = build_tasks(core_spec, comm_spec, grid, config)
        serial = run_tasks(tasks, jobs=1)
        chunked = run_tasks(tasks, jobs=2, chunk_size=2)
        assert _canonical(serial) == _canonical(chunked)

    def test_progress_monotonic_and_complete(self, design, config):
        core_spec, comm_spec = design
        grid = ParameterGrid(frequencies_mhz=(300.0, 400.0, 500.0))
        tasks = build_tasks(core_spec, comm_spec, grid, config)
        seen = []
        run_tasks(tasks, jobs=2, progress=lambda d, t, k: seen.append((d, t)))
        assert [d for d, _ in seen] == [1, 2, 3]
        assert all(t == 3 for _, t in seen)

    def test_errors_reraised_in_task_order(self, design):
        core_spec, comm_spec = design
        good = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        tasks = [
            SynthesisTask(
                key=i, core_spec=core_spec, comm_spec=comm_spec, config=good,
                library="broken" if i in (1, 2) else None,  # type: ignore
            )
            for i in range(3)
        ]
        with pytest.raises(Exception) as excinfo_serial:
            run_tasks(tasks, jobs=1)
        with pytest.raises(Exception) as excinfo_parallel:
            run_tasks(tasks, jobs=2)
        assert type(excinfo_serial.value) is type(excinfo_parallel.value)

    def test_raise_errors_false_returns_all(self, design):
        core_spec, comm_spec = design
        good = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        tasks = [
            SynthesisTask(
                key=i, core_spec=core_spec, comm_spec=comm_spec, config=good,
                library="broken" if i == 0 else None,  # type: ignore
            )
            for i in range(2)
        ]
        results = run_tasks(tasks, jobs=1, raise_errors=False)
        assert not results[0].ok
        assert results[1].ok


class TestSuiteDesignSpace:
    def test_suite_fanout_merges_per_benchmark(self):
        from repro.bench.suites import suite_design_space
        from repro.engine.grid import GridPoint

        grid = ParameterGrid(frequencies_mhz=(400.0, 500.0))
        merged = suite_design_space(
            names=("d36_4",), grid=grid,
            base_config=SynthesisConfig(max_ill=25, switch_count_range=(4, 5)),
            jobs=2,
        )
        assert set(merged) == {"d36_4"}
        assert set(merged["d36_4"]) == {
            GridPoint(frequency_mhz=400.0), GridPoint(frequency_mhz=500.0),
        }


class TestProfile:
    def test_timer_measures(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed_s >= 0.0

    def test_recorder_accumulates_and_writes(self, tmp_path):
        rec = ProfileRecorder()
        rec.record("stage", 0.5, note="a")
        rec.record("stage", 0.25)
        with rec.time("other"):
            pass
        assert rec.stage("stage").count == 2
        assert rec.best_s("stage") == 0.25
        assert rec.stage("stage").total_s == pytest.approx(0.75)
        path = tmp_path / "bench.json"
        doc = rec.write_json(path, extra={"benchmark": "x"})
        on_disk = json.loads(path.read_text())
        assert on_disk == doc
        assert on_disk["benchmark"] == "x"
        assert set(on_disk["stages"]) == {"stage", "other"}


class TestSimBatchBenchmarkLeg:
    """Fast smoke over the batch leg of the simulator benchmark: the
    trajectory-identity check and the reps/sec ratios, on the tiny test
    topology with a scaled-down K (the real K and design run under
    ``make bench``)."""

    def test_report_shape_identity_and_ratios(self, contended_topo,
                                              monkeypatch):
        from repro.engine import benchmark as bm

        monkeypatch.setattr(bm, "_SIM_BATCH_K_QUICK", 8)
        recorder = ProfileRecorder()
        # The solo per-process baselines _bench_sim_batch reuses; in the
        # real benchmark measure() records them at identical load.
        recorder.record("sim_engine_gate", 0.05)
        recorder.record("sim_naive_gate", 0.50)
        lines = []
        report = bm._bench_sim_batch(
            contended_topo, recorder, lines.append,
            cycles=400, warmup=40, quick=True,
        )
        assert report["identical_trajectories"]
        assert report["identity_replications"] == bm._SIM_BATCH_IDENTITY_K
        assert report["replications"] == 8
        assert report["batch_reps_per_s"] > 0
        assert report["batch_s"] > 0
        # The reference baseline is 10x slower than the solo engine here,
        # so its speedup must come out exactly 10x higher.
        assert report["speedup_vs_reference"] == pytest.approx(
            10.0 * report["speedup_vs_solo_engine"], rel=1e-3
        )
        assert len(lines) == 2  # identity line + throughput line
        assert recorder.best_s("sim_batch_engine") > 0
