"""Deterministic RNG helpers (repro.rng)."""

from repro.rng import make_rng, stable_shuffle


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42)
        b = make_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_salt_decorrelates(self):
        a = make_rng(42, "floorplan")
        b = make_rng(42, "traffic")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_salted_streams_reproducible(self):
        a = make_rng(7, "x", 3)
        b = make_rng(7, "x", 3)
        assert a.random() == b.random()


class TestStableShuffle:
    def test_is_permutation(self):
        items = list(range(20))
        out = stable_shuffle(items, 1)
        assert sorted(out) == items

    def test_deterministic(self):
        assert stable_shuffle(range(10), 5) == stable_shuffle(range(10), 5)

    def test_does_not_mutate_input(self):
        items = [3, 1, 2]
        stable_shuffle(items, 0)
        assert items == [3, 1, 2]
