"""Deterministic RNG helpers (repro.rng)."""

import pytest

from repro.rng import make_np_rng, make_rng, stable_shuffle


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42)
        b = make_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_salt_decorrelates(self):
        a = make_rng(42, "floorplan")
        b = make_rng(42, "traffic")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_salted_streams_reproducible(self):
        a = make_rng(7, "x", 3)
        b = make_rng(7, "x", 3)
        assert a.random() == b.random()


class TestMakeNpRng:
    """``make_np_rng`` must replay ``make_rng`` bit for bit — the bridge
    the vectorized batch-schedule sampler stands on."""

    @pytest.mark.parametrize("seed", [0, 1, 42, 123456789, 2**63 - 1,
                                      2**70 + 3])
    def test_unsalted_stream_bit_equal(self, seed):
        scalar = make_rng(seed)
        vector = make_np_rng(seed)
        assert [scalar.random() for _ in range(512)] == list(
            vector.random_sample(512)
        )

    @pytest.mark.parametrize("salt", [("wormhole",), ("x", 3),
                                      ("traffic", 0, "burst")])
    def test_salted_stream_bit_equal(self, salt):
        scalar = make_rng(7, *salt)
        vector = make_np_rng(7, *salt)
        assert [scalar.random() for _ in range(512)] == list(
            vector.random_sample(512)
        )

    def test_salt_decorrelates(self):
        a = make_np_rng(42, "floorplan").random_sample(5)
        b = make_np_rng(42, "traffic").random_sample(5)
        assert list(a) != list(b)


class TestStableShuffle:
    def test_is_permutation(self):
        items = list(range(20))
        out = stable_shuffle(items, 1)
        assert sorted(out) == items

    def test_deterministic(self):
        assert stable_shuffle(range(10), 5) == stable_shuffle(range(10), 5)

    def test_does_not_mutate_input(self):
        items = [3, 1, 2]
        stable_shuffle(items, 0)
        assert items == [3, 1, 2]
