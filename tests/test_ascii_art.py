"""ASCII floorplan rendering (repro.floorplan.ascii_art)."""

from repro.floorplan.ascii_art import render_floorplan, render_layer
from repro.floorplan.geometry import Rect
from repro.floorplan.placement import ChipFloorplan, PlacedComponent


def _fp():
    fp = ChipFloorplan()
    fp.add(PlacedComponent("ARM", "core", Rect(0, 0, 2, 2), 0))
    fp.add(PlacedComponent("MEM", "core", Rect(2.5, 0, 2, 2), 0))
    fp.add(PlacedComponent("sw0", "switch", Rect(2.1, 0.5, 0.3, 0.3), 0))
    fp.add(PlacedComponent("DSP", "core", Rect(0, 0, 2, 1.5), 1))
    fp.add(PlacedComponent("tsv:l0:L1", "tsv", Rect(2.2, 0.2, 0.1, 0.1), 1))
    return fp


class TestRenderLayer:
    def test_contains_dimensions(self):
        text = render_layer(_fp(), 0)
        assert "layer 0" in text
        assert "4.50 x 2.00 mm" in text

    def test_switch_and_core_glyphs(self):
        text = render_layer(_fp(), 0)
        assert "#" in text   # switch
        assert "A" in text   # ARM fill
        assert "M" in text   # MEM fill

    def test_tsv_glyph(self):
        text = render_layer(_fp(), 1)
        assert "+" in text

    def test_empty_layer(self):
        assert "empty" in render_layer(_fp(), 5)

    def test_grid_width_respected(self):
        text = render_layer(_fp(), 0, width_chars=40)
        rows = text.splitlines()[1:]
        assert all(len(r) <= 40 for r in rows)


class TestRenderFloorplan:
    def test_all_layers_and_legend(self):
        text = render_floorplan(_fp())
        assert "layer 0" in text and "layer 1" in text
        assert "legend:" in text

    def test_renders_synthesized_design(self, tiny_specs):
        from repro.core.config import SynthesisConfig
        from repro.core.synthesis import synthesize

        core_spec, comm_spec = tiny_specs
        result = synthesize(
            core_spec, comm_spec,
            config=SynthesisConfig(max_ill=10, switch_count_range=(2, 2)),
        )
        text = render_floorplan(result.best_power().floorplan)
        assert "layer 0" in text and "layer 1" in text
        assert "#" in text
