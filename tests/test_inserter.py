"""Custom NoC-insertion routine (repro.floorplan.inserter, paper Sec. VII)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FloorplanError
from repro.floorplan.geometry import Rect
from repro.floorplan.inserter import (
    InsertionReport,
    NewComponent,
    insert_components,
)
from repro.floorplan.placement import ChipFloorplan, PlacedComponent


def _cores(*rects, layer=0):
    return [
        PlacedComponent(name=f"core{i}", kind="core", rect=r, layer=layer)
        for i, r in enumerate(rects)
    ]


def _legal(components):
    fp = ChipFloorplan(components=list(components))
    return fp.is_legal()


class TestFreeSpaceSearch:
    def test_places_at_ideal_when_free(self):
        cores = _cores(Rect(0, 0, 1, 1))
        new = [NewComponent("sw0", "switch", 0.2, 0.2, ideal_center=(3.0, 3.0))]
        out = insert_components(cores, new)
        sw = [c for c in out if c.name == "sw0"][0]
        assert sw.center == pytest.approx((3.0, 3.0))

    def test_finds_nearby_free_spot(self):
        # Ideal position is inside a core; a gap exists just to the right.
        cores = _cores(Rect(0, 0, 2, 2))
        new = [NewComponent("sw0", "switch", 0.3, 0.3, ideal_center=(1.0, 1.0))]
        report = InsertionReport()
        out = insert_components(cores, new, search_radius=2.0, report=report)
        assert _legal(out)
        assert report.placed_free == 1
        assert report.placed_by_displacement == 0
        # Core must not have moved: free-space insertion is non-invasive.
        core = [c for c in out if c.name == "core0"][0]
        assert (core.rect.x, core.rect.y) == (0.0, 0.0)

    def test_displacement_when_no_space(self):
        # Dense 3x3 block of cores, tiny search radius: must displace.
        rects = [Rect(i, j, 1, 1) for i in range(3) for j in range(3)]
        cores = _cores(*rects)
        new = [NewComponent("sw0", "switch", 1.0, 1.0, ideal_center=(1.5, 1.5))]
        report = InsertionReport()
        out = insert_components(
            cores, new, search_radius=0.3, grid_step=0.1, report=report
        )
        assert _legal(out)
        assert report.placed_by_displacement == 1
        assert report.total_displacement > 0

    def test_multiple_insertions_reuse_gaps(self):
        rects = [Rect(i, 0, 1, 1) for i in range(4)]
        cores = _cores(*rects)
        new = [
            NewComponent(f"sw{k}", "switch", 0.4, 0.4, ideal_center=(2.0, 0.5))
            for k in range(3)
        ]
        out = insert_components(cores, new, search_radius=3.0)
        assert _legal(out)
        assert len(out) == 7

    def test_empty_layer(self):
        new = [NewComponent("sw0", "switch", 0.5, 0.5, ideal_center=(1.0, 1.0))]
        out = insert_components([], new)
        assert len(out) == 1 and _legal(out)

    def test_mixed_layers_rejected(self):
        comps = [
            PlacedComponent("a", "core", Rect(0, 0, 1, 1), 0),
            PlacedComponent("b", "core", Rect(2, 0, 1, 1), 1),
        ]
        with pytest.raises(FloorplanError):
            insert_components(comps, [])

    def test_clamps_to_nonnegative_coords(self):
        cores = _cores(Rect(0, 0, 1, 1))
        new = [NewComponent("sw0", "switch", 0.4, 0.4, ideal_center=(0.0, 0.0))]
        out = insert_components(cores, new, search_radius=2.0)
        sw = [c for c in out if c.name == "sw0"][0]
        assert sw.rect.x >= 0 and sw.rect.y >= 0
        assert _legal(out)


class TestInsertionProperties:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_always_legal_and_complete(self, data):
        n_cores = data.draw(st.integers(min_value=0, max_value=6))
        # Non-overlapping cores on a grid with jitter-free placement.
        rects = [
            Rect((i % 3) * 1.5, (i // 3) * 1.5, 1.0, 1.0) for i in range(n_cores)
        ]
        cores = _cores(*rects)
        n_new = data.draw(st.integers(min_value=1, max_value=4))
        new = []
        for k in range(n_new):
            cx = data.draw(st.floats(min_value=0.0, max_value=5.0))
            cy = data.draw(st.floats(min_value=0.0, max_value=5.0))
            side = data.draw(st.floats(min_value=0.1, max_value=0.8))
            new.append(NewComponent(f"sw{k}", "switch", side, side, (cx, cy)))
        out = insert_components(cores, new, search_radius=1.0, grid_step=0.25)
        assert len(out) == n_cores + n_new
        assert _legal(out)
        names = {c.name for c in out}
        assert all(f"sw{k}" in names for k in range(n_new))
