"""End-to-end synthesis driver (repro.core.synthesis) — integration tests."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.synthesis import SunFloor3D, synthesize
from repro.errors import SpecError
from repro.noc.deadlock import ChannelDependencyGraph
from repro.spec.comm_spec import CommSpec, TrafficFlow
from repro.spec.core_spec import Core, CoreSpec


class TestSynthesisTiny:
    def test_produces_points_for_every_feasible_count(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        result = synthesize(core_spec, comm_spec,
                            config=SynthesisConfig(max_ill=10))
        assert len(result.points) >= 4
        counts = {p.switch_count for p in result.points}
        assert 1 in counts and 6 in counts
        assert result.unmet_switch_counts == []

    def test_points_have_complete_artifacts(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        result = synthesize(core_spec, comm_spec,
                            config=SynthesisConfig(max_ill=10))
        for p in result.points:
            assert p.floorplan.is_legal()
            p.topology.validate_routes()
            assert set(p.topology.routes) == {
                (core_spec.index_of(f.src), core_spec.index_of(f.dst))
                for f in comm_spec
            }
            assert p.metrics.total_power_mw > 0
            assert p.metrics.avg_latency_cycles >= 1.0

    def test_all_points_deadlock_free(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        result = synthesize(core_spec, comm_spec,
                            config=SynthesisConfig(max_ill=10))
        for p in result.points:
            cdg = ChannelDependencyGraph()
            for (src, dst), link_ids in p.topology.routes.items():
                flow = comm_spec.flow_between(
                    core_spec.names[src], core_spec.names[dst]
                )
                cdg.add_path(link_ids, flow.message_type)
            assert cdg.is_deadlock_free()

    def test_max_ill_respected_in_all_points(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        cfg = SynthesisConfig(max_ill=4)
        result = synthesize(core_spec, comm_spec, config=cfg)
        for p in result.points:
            assert p.metrics.max_ill_used <= cfg.max_ill

    def test_latency_constraints_met_in_all_points(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        result = synthesize(core_spec, comm_spec,
                            config=SynthesisConfig(max_ill=10))
        for p in result.points:
            for flow in comm_spec:
                key = (core_spec.index_of(flow.src), core_spec.index_of(flow.dst))
                assert p.metrics.per_flow_latency[key] <= flow.latency + 1e-9

    def test_deterministic(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        cfg = SynthesisConfig(max_ill=10, seed=1)
        a = synthesize(core_spec, comm_spec, config=cfg)
        b = synthesize(core_spec, comm_spec, config=cfg)
        assert len(a.points) == len(b.points)
        for pa, pb in zip(a.points, b.points):
            assert pa.total_power_mw == pytest.approx(pb.total_power_mw)
            assert pa.assignment.blocks == pb.assignment.blocks


class TestSynthesisSmall:
    def test_three_layer_design(self, small_specs):
        core_spec, comm_spec = small_specs
        result = synthesize(core_spec, comm_spec,
                            config=SynthesisConfig(max_ill=12))
        assert not result.is_empty
        best = result.best_power()
        assert best.metrics.total_power_mw > 0
        assert best.floorplan.num_layers == 3

    def test_phase2_layer_locality(self, small_specs):
        core_spec, comm_spec = small_specs
        cfg = SynthesisConfig(max_ill=12, phase="phase2")
        result = synthesize(core_spec, comm_spec, config=cfg)
        assert not result.is_empty
        for p in result.points:
            assert p.phase == "phase2"
            for core, sw in p.topology.core_to_switch.items():
                assert p.topology.switches[sw].layer == core_spec.layer_of(core)
            # Switch links only between adjacent layers.
            for link in p.topology.links:
                if not link.is_core_link:
                    assert link.layers_crossed <= 1

    def test_phase1_vs_phase2_power_ordering(self, small_specs):
        """The Fig. 17 shape: phase 2's restriction costs power (or at
        least never helps) on cross-layer-heavy designs."""
        core_spec, comm_spec = small_specs
        p1 = synthesize(core_spec, comm_spec,
                        config=SynthesisConfig(max_ill=12, phase="phase1"))
        p2 = synthesize(core_spec, comm_spec,
                        config=SynthesisConfig(max_ill=12, phase="phase2"))
        assert not p1.is_empty and not p2.is_empty
        assert p1.best_power().total_power_mw <= p2.best_power().total_power_mw * 1.05

    def test_tight_max_ill_falls_back_or_fails(self, small_specs):
        core_spec, comm_spec = small_specs
        cfg = SynthesisConfig(max_ill=2, phase="auto")
        result = synthesize(core_spec, comm_spec, config=cfg)
        # Either valid points respecting the tight constraint, or nothing.
        for p in result.points:
            assert p.metrics.max_ill_used <= 2

    def test_switch_count_range_respected(self, small_specs):
        core_spec, comm_spec = small_specs
        cfg = SynthesisConfig(max_ill=12, switch_count_range=(2, 4))
        result = synthesize(core_spec, comm_spec, config=cfg)
        for p in result.points:
            # Indirect switches may add to the count; the assignment's
            # direct switch count stays within range.
            assert 2 <= p.assignment.num_switches <= 4

    def test_constrained_floorplanner_variant(self, small_specs):
        core_spec, comm_spec = small_specs
        cfg = SynthesisConfig(
            max_ill=12, floorplanner="constrained", switch_count_range=(2, 3)
        )
        result = synthesize(core_spec, comm_spec, config=cfg)
        for p in result.points:
            assert p.floorplan.is_legal()


class TestConstruction:
    def test_invalid_specs_rejected_at_construction(self):
        cores = CoreSpec(cores=[Core("A", 1, 1, 0, 0, 0)])
        comm = CommSpec(flows=[TrafficFlow("A", "Z", 100, 8)])
        with pytest.raises(SpecError):
            SunFloor3D(cores, comm)

    def test_objective_selection(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        result = synthesize(core_spec, comm_spec,
                            config=SynthesisConfig(max_ill=10))
        by_latency = result.best("latency")
        by_power = result.best("power")
        assert by_latency.avg_latency_cycles <= by_power.avg_latency_cycles + 1e-9
