"""Alpha sweep (repro.core.frequency_sweep.sweep_alpha, Def. 3)."""

import pytest

from repro.core.config import SynthesisConfig
from repro.core.frequency_sweep import sweep_alpha


class TestAlphaSweep:
    def test_results_per_alpha(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 3))
        results = sweep_alpha(core_spec, comm_spec, (0.0, 0.5, 1.0), config=cfg)
        assert set(results) == {0.0, 0.5, 1.0}
        for result in results.values():
            assert result.points

    def test_alpha_changes_partitions(self):
        """α = 1 clusters by bandwidth, α = 0 by latency tightness; a design
        where those disagree must produce different assignments."""
        from tests.conftest import grid_core_spec
        from repro.spec.comm_spec import CommSpec, TrafficFlow

        core_spec = grid_core_spec(6, 1)
        comm_spec = CommSpec(flows=[
            # Heavy but latency-relaxed pair.
            TrafficFlow("C0", "C1", 1000, 40),
            # Light but latency-critical pair.
            TrafficFlow("C2", "C3", 50, 2.0),
            TrafficFlow("C4", "C5", 200, 20),
            TrafficFlow("C1", "C2", 60, 30),
            TrafficFlow("C3", "C4", 60, 30),
        ])
        from repro.core.phase1 import phase1_candidate
        from repro.graphs.comm_graph import build_comm_graph

        graph = build_comm_graph(core_spec, comm_spec)
        a_bw = phase1_candidate(graph, SynthesisConfig(alpha=1.0), 3)
        a_lat = phase1_candidate(graph, SynthesisConfig(alpha=0.0), 3)
        # Bandwidth clustering puts C0+C1 together; latency clustering puts
        # C2+C3 together.
        assert a_bw.core_to_switch[0] == a_bw.core_to_switch[1]
        assert a_lat.core_to_switch[2] == a_lat.core_to_switch[3]

    def test_config_alpha_recorded(self, tiny_specs):
        core_spec, comm_spec = tiny_specs
        cfg = SynthesisConfig(max_ill=10, switch_count_range=(2, 2))
        results = sweep_alpha(core_spec, comm_spec, (0.3,), config=cfg)
        point = results[0.3].best_power()
        assert point.config.alpha == pytest.approx(0.3)
