"""Sequence-pair representation and packing (repro.floorplan.sequence_pair)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan.geometry import Rect, rects_overlap
from repro.floorplan.sequence_pair import (
    SequencePair,
    positions_to_seqpair,
    seqpair_to_positions,
)


def _no_overlaps(positions, widths, heights):
    rects = [
        Rect(x, y, w, h) for (x, y), w, h in zip(positions, widths, heights)
    ]
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            if rects_overlap(rects[i], rects[j]):
                return False
    return True


class TestSequencePair:
    def test_identity_row(self):
        sp = SequencePair.identity(3)
        pos = seqpair_to_positions(sp, [1, 1, 1], [1, 1, 1])
        # Identity: everything in one row, left to right.
        assert pos == [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]

    def test_grid_is_compact(self):
        n = 9
        sp = SequencePair.grid(n)
        pos = seqpair_to_positions(sp, [1.0] * n, [1.0] * n)
        w = max(x + 1 for x, _ in pos)
        h = max(y + 1 for _, y in pos)
        assert w <= 3.0 + 1e-9 and h <= 3.0 + 1e-9

    def test_invalid_permutation_rejected(self):
        with pytest.raises(ValueError):
            SequencePair(positive=(0, 0, 1), negative=(0, 1, 2))

    def test_swap_positive(self):
        sp = SequencePair.identity(3).with_swap_positive(0, 2)
        assert sp.positive == (2, 1, 0)
        assert sp.negative == (0, 1, 2)

    def test_swap_both_keeps_permutations(self):
        sp = SequencePair.identity(4).with_swap_both(1, 3)
        assert sorted(sp.positive) == [0, 1, 2, 3]
        assert sorted(sp.negative) == [0, 1, 2, 3]

    def test_vertical_stack(self):
        # Reverse positive, keep negative: block 0 below block 1 below 2.
        sp = SequencePair(positive=(2, 1, 0), negative=(0, 1, 2))
        pos = seqpair_to_positions(sp, [1, 1, 1], [1, 1, 1])
        assert pos == [(0.0, 0.0), (0.0, 1.0), (0.0, 2.0)]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            seqpair_to_positions(SequencePair.identity(2), [1.0], [1.0, 1.0])


class TestPositionsToSeqpair:
    def test_round_trip_preserves_relative_order(self):
        # Two blocks side by side stay side by side after re-derivation.
        positions = [(0.0, 0.0), (2.0, 0.0)]
        sp = positions_to_seqpair(positions, [1, 1], [1, 1])
        packed = seqpair_to_positions(sp, [1, 1], [1, 1])
        assert packed[0][0] < packed[1][0]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            positions_to_seqpair([(0, 0)], [1, 2], [1])


class TestPackingProperties:
    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_packing_never_overlaps(self, data):
        n = data.draw(st.integers(min_value=1, max_value=10))
        widths = [data.draw(st.floats(min_value=0.2, max_value=5.0)) for _ in range(n)]
        heights = [data.draw(st.floats(min_value=0.2, max_value=5.0)) for _ in range(n)]
        perm1 = data.draw(st.permutations(range(n)))
        perm2 = data.draw(st.permutations(range(n)))
        sp = SequencePair(positive=tuple(perm1), negative=tuple(perm2))
        pos = seqpair_to_positions(sp, widths, heights)
        assert _no_overlaps(pos, widths, heights)
        assert all(x >= 0 and y >= 0 for x, y in pos)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=1, max_value=12))
    def test_grid_packing_legal(self, n):
        sp = SequencePair.grid(n)
        widths = [1.0 + 0.1 * i for i in range(n)]
        heights = [1.0 + 0.05 * i for i in range(n)]
        pos = seqpair_to_positions(sp, widths, heights)
        assert _no_overlaps(pos, widths, heights)
