"""Wall-clock instrumentation (repro.engine.profile) and the staged
pipeline's StageTimings formatting/aggregation paths."""

from __future__ import annotations

import json

import pytest

from repro.core.pipeline import StageTimings
from repro.engine.profile import ProfileRecorder, StageRecord, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            pass
        assert t.elapsed_s >= 0.0

    def test_restart_resets(self):
        t = Timer()
        with t:
            pass
        t.restart()
        assert t.elapsed_s == 0.0

    def test_elapsed_survives_exceptions(self):
        t = Timer()
        with pytest.raises(ValueError):
            with t:
                raise ValueError("boom")
        assert t.elapsed_s >= 0.0


class TestStageRecord:
    def test_empty_record(self):
        record = StageRecord("synth")
        assert record.total_s == 0.0
        assert record.best_s == 0.0
        assert record.count == 0
        assert record.as_dict() == {"total_s": 0.0, "best_s": 0.0, "count": 0}

    def test_aggregates(self):
        record = StageRecord("synth", times_s=[0.5, 0.25, 1.0])
        assert record.total_s == 1.75
        assert record.best_s == 0.25
        assert record.count == 3

    def test_meta_serialised_only_when_present(self):
        record = StageRecord("s", times_s=[1.0], meta={"jobs": 4})
        assert record.as_dict()["meta"] == {"jobs": 4}


class TestProfileRecorder:
    def test_record_accumulates_and_merges_meta(self):
        rec = ProfileRecorder()
        rec.record("sweep", 1.0, points=8)
        rec.record("sweep", 0.5, jobs=2)
        stage = rec.stage("sweep")
        assert stage.times_s == [1.0, 0.5]
        assert stage.meta == {"points": 8, "jobs": 2}
        assert rec.best_s("sweep") == 0.5

    def test_unknown_stage(self):
        rec = ProfileRecorder()
        assert rec.stage("nope") is None
        assert rec.best_s("nope") == 0.0

    def test_time_context_manager_records(self):
        rec = ProfileRecorder()
        with rec.time("step", cycles=100):
            pass
        assert rec.stage("step").count == 1
        assert rec.stage("step").meta == {"cycles": 100}

    def test_as_dict_sorted_by_name(self):
        rec = ProfileRecorder()
        rec.record("zeta", 1.0)
        rec.record("alpha", 2.0)
        assert list(rec.as_dict()) == ["alpha", "zeta"]

    def test_write_json_roundtrip(self, tmp_path):
        rec = ProfileRecorder()
        rec.record("sweep", 0.125, points=4)
        out = tmp_path / "bench.json"
        doc = rec.write_json(out, extra={"benchmark": "unit"})
        on_disk = json.loads(out.read_text())
        assert on_disk == doc
        assert on_disk["benchmark"] == "unit"
        assert on_disk["stages"]["sweep"]["count"] == 1
        assert on_disk["stages"]["sweep"]["total_s"] == 0.125


class TestStageTimings:
    def _timings(self):
        timings = StageTimings()
        timings.add("routing", 0.5)
        timings.add("routing", 0.25)
        timings.add("floorplan", 2.0)
        return timings

    def test_order_preserved_and_aggregated(self):
        timings = self._timings()
        assert timings.names == ["routing", "floorplan"]
        assert timings.count("routing") == 2
        assert timings.total_s("routing") == 0.75
        assert timings.count("missing") == 0
        assert timings.total_s("missing") == 0.0

    def test_merge_folds_worker_dicts(self):
        timings = self._timings()
        timings.merge({"routing": 0.25, "verify": 1.0})
        assert timings.count("routing") == 3
        assert timings.names[-1] == "verify"

    def test_as_dict_mean(self):
        doc = self._timings().as_dict()
        assert doc["routing"] == {
            "total_s": 0.75, "count": 2, "mean_ms": 375.0,
        }

    def test_report_formatting(self):
        report = self._timings().report()
        lines = report.splitlines()
        assert lines[0] == "per-stage timings:"
        # Header, separator, then one row per stage in first-seen order.
        assert lines[1].split() == ["stage", "calls", "total", "s", "mean", "ms"]
        assert set(lines[2]) <= {" ", "-"}
        routing_row, floorplan_row = lines[3], lines[4]
        assert routing_row.split() == ["routing", "2", "0.750", "375.00"]
        assert floorplan_row.split() == ["floorplan", "1", "2.000", "2000.00"]
        # Aligned: all rows end at the same column.
        assert len({len(line) for line in lines[1:]}) == 1

    def test_report_empty(self):
        report = StageTimings().report()
        assert report.splitlines()[0] == "per-stage timings:"
