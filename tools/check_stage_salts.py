#!/usr/bin/env python
"""Deprecation shim: the stage-salt check now lives in ``repro.analysis``.

The check itself — a changed ``Stage.run`` body must come with a salt
bump, recorded in ``tools/stage_salts.json`` — is the ``stage-salts``
checker (codes RPL501–RPL504) of the contract linter; run it with::

    python -m repro.cli lint --checkers stage-salts

or as part of the full linter via ``make lint`` / ``make check``. This
script remains for two reasons: existing docs/automation invoke it, and
``--update`` (refreshing the manifest after a legitimate salt bump or an
output-preserving refactor) is a *mutation*, which the linter — a pure
reporter — deliberately does not perform.

Usage::

    python tools/check_stage_salts.py            # delegate to the linter
    python tools/check_stage_salts.py --update   # refresh the manifest
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
MANIFEST = REPO_ROOT / "tools" / "stage_salts.json"

sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the manifest from the current sources")
    args = parser.parse_args(argv)

    if args.update:
        from repro.analysis.stage_salts import current_stages

        stages = current_stages()
        MANIFEST.write_text(json.dumps(stages, indent=2) + "\n")
        print(f"wrote {MANIFEST.relative_to(REPO_ROOT)} "
              f"({len(stages)} stages)")
        return 0

    from repro.analysis import format_report, lint_paths

    report = lint_paths(
        [REPO_ROOT / "src" / "repro"],
        project_root=REPO_ROOT,
        checkers=["stage-salts"],
    )
    print(format_report(report))
    if not report.clean:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
