#!/usr/bin/env python
"""Lint: a changed ``Stage.run`` body must come with a salt bump.

Stage-cache fingerprints (:mod:`repro.engine.stagecache`) cover a stage's
*declared inputs* plus its ``salt`` — not its code. If ``run()`` changes
behaviour but the salt stays put, stale cached records keep getting served
and warm runs silently diverge from cold ones. This check makes that
mistake loud at ``make check`` time:

* ``tools/stage_salts.json`` records, for every stage of the default
  pipeline, its current ``salt`` and the SHA-256 of its ``run()`` source;
* check mode (the default) recomputes both and fails on any drift, with a
  message saying whether the salt bump or the manifest refresh is missing;
* ``--update`` rewrites the manifest — run it *after* bumping the salt.

A pure refactor of ``run()`` that provably preserves outputs may keep the
salt (cached records stay valid); the manifest still needs ``--update`` so
the new source hash is on record. See ``docs/pipeline.md``
("Salt policy").

Usage::

    python tools/check_stage_salts.py            # lint (make check)
    python tools/check_stage_salts.py --update   # refresh the manifest
"""

from __future__ import annotations

import argparse
import hashlib
import inspect
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
MANIFEST = REPO_ROOT / "tools" / "stage_salts.json"

sys.path.insert(0, str(REPO_ROOT / "src"))


def current_stages() -> dict:
    """``{stage name: {"salt": ..., "run_sha256": ...}}`` for the default
    pipeline, in pipeline order."""
    from repro.core.pipeline import build_pipeline

    out = {}
    for stage in build_pipeline().stages:
        source = inspect.getsource(type(stage).run)
        out[stage.name] = {
            "salt": stage.salt,
            "run_sha256": hashlib.sha256(source.encode("utf-8")).hexdigest(),
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the manifest from the current sources")
    args = parser.parse_args(argv)

    stages = current_stages()
    if args.update:
        MANIFEST.write_text(json.dumps(stages, indent=2) + "\n")
        print(f"wrote {MANIFEST.relative_to(REPO_ROOT)} "
              f"({len(stages)} stages)")
        return 0

    if not MANIFEST.exists():
        print(f"error: {MANIFEST.relative_to(REPO_ROOT)} missing; "
              "run tools/check_stage_salts.py --update and commit it")
        return 1
    recorded = json.loads(MANIFEST.read_text())

    problems = []
    for name, cur in stages.items():
        old = recorded.get(name)
        if old is None:
            problems.append(
                f"{name}: new stage not in the manifest "
                "(run --update and commit)"
            )
        elif cur["run_sha256"] != old["run_sha256"]:
            if cur["salt"] == old["salt"]:
                problems.append(
                    f"{name}: run() changed but salt is still "
                    f"{cur['salt']!r} — bump Stage.salt so stale cached "
                    "records are invalidated (or, for a provably "
                    "output-preserving refactor, just run --update)"
                )
            else:
                problems.append(
                    f"{name}: salt bumped to {cur['salt']!r} — refresh the "
                    "manifest with --update and commit it"
                )
        elif cur["salt"] != old["salt"]:
            problems.append(
                f"{name}: salt changed to {cur['salt']!r} with run() "
                "untouched — refresh the manifest with --update"
            )
    for name in recorded:
        if name not in stages:
            problems.append(
                f"{name}: in the manifest but not in the default pipeline "
                "(run --update)"
            )

    if problems:
        print("stage-salt check failed:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"stage salts ok ({len(stages)} stages)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
