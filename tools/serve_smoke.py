#!/usr/bin/env python
"""End-to-end smoke of the campaign service: ``make serve-smoke``.

Drives the real CLI surface the way an operator would — no test harness,
no in-process shortcuts:

1. writes three small campaign specs (two valid, one broken) and submits
   them with ``campaign submit`` (the broken one must be refused
   client-side with every problem listed);
2. drops one more valid spec straight into the inbox (the file-drop
   submission path);
3. runs ``serve --once`` to drain the spool;
4. checks the journal and the spool agree: every submitted job is
   ``done``, each result file's sha256 matches its journaled digest, the
   store holds exactly the campaign's task payloads, the inbox is empty
   and ``campaign status`` exits 0.

Exit 0 means the service round-trip works on this machine; any
inconsistency prints what disagreed and exits 1.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SPECS = {
    "smoke-a.json": {
        "name": "smoke-a", "kind": "sweep", "benchmark": "d26_media",
        "grid": {"frequencies_mhz": [400, 800]},
        "config": {"switch_count_range": [3, 4]},
    },
    "smoke-b.json": {
        "name": "smoke-b", "kind": "sweep", "benchmark": "d26_media",
        "grid": {"frequencies_mhz": [500, 600]},
        "config": {"switch_count_range": [3, 4]},
    },
    "smoke-inbox.json": {
        "name": "smoke-inbox", "kind": "sweep", "benchmark": "d26_media",
        "grid": {"frequencies_mhz": [450]},
        "config": {"switch_count_range": [3, 4]},
    },
}
BROKEN = {"name": "smoke-broken", "benchmark": "no-such-design",
          "grid": {"frequencies_mhz": [-1]}}


def cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH")
        else src
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, cwd=REPO, capture_output=True, text=True, timeout=300,
    )


def fail(message: str) -> "None":
    print(f"serve-smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    scratch = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    spool = scratch / "spool"

    for name, spec in SPECS.items():
        (scratch / name).write_text(json.dumps(spec))
    broken_path = scratch / "smoke-broken.json"
    broken_path.write_text(json.dumps(BROKEN))

    print(f"serve-smoke: spool {spool}")

    # Client-side validation refuses the broken spec before it spools.
    refused = cli("campaign", "submit", str(broken_path),
                  "--dir", str(spool))
    if refused.returncode != 2:
        fail(f"broken spec exited {refused.returncode}, wanted 2\n"
             f"{refused.stdout}{refused.stderr}")
    for fragment in ("benchmark", "grid.frequencies_mhz[0]"):
        if fragment not in refused.stderr:
            fail(f"refusal did not mention {fragment!r}:\n{refused.stderr}")

    for name in ("smoke-a.json", "smoke-b.json"):
        submitted = cli("campaign", "submit", str(scratch / name),
                        "--dir", str(spool))
        if submitted.returncode != 0:
            fail(f"submit {name} exited {submitted.returncode}:\n"
                 f"{submitted.stderr}")

    # The raw file-drop path: no CLI, just an inbox write.
    inbox = spool / "inbox"
    inbox.mkdir(parents=True, exist_ok=True)
    (inbox / "zz-smoke-inbox.json").write_text(
        (scratch / "smoke-inbox.json").read_text()
    )

    served = cli("serve", "--dir", str(spool), "--once", "--batch", "1")
    if served.returncode != 0:
        fail(f"serve exited {served.returncode}:\n"
             f"{served.stdout}{served.stderr}")
    print(served.stdout.strip())

    status = cli("campaign", "status", "--dir", str(spool))
    if status.returncode != 0:
        fail(f"status exited {status.returncode}:\n{status.stderr}")
    print(status.stdout.strip())

    # Journal <-> spool consistency.
    sys.path.insert(0, str(REPO / "src"))
    from repro.campaign import CampaignService

    state = CampaignService.status(spool)
    expected_jobs = 3
    if len(state.jobs) != expected_jobs:
        fail(f"{len(state.jobs)} job(s) journaled, wanted {expected_jobs}")
    if state.incomplete:
        fail("journal still holds incomplete jobs after a drain: "
             + ", ".join(j.job_id for j in state.incomplete))
    total_tasks = 0
    for job in state.jobs.values():
        if job.state != "done":
            fail(f"{job.job_id} is {job.state!r}, wanted done "
                 f"({job.error or 'no error recorded'})")
        blob = Path(job.result_path).read_bytes()
        if hashlib.sha256(blob).hexdigest() != job.digest:
            fail(f"{job.job_id}: result file does not match its "
                 "journaled digest")
        payloads = pickle.loads(blob)
        if len(payloads) != job.total_tasks:
            fail(f"{job.job_id}: {len(payloads)} payload(s) in the result "
                 f"file, journal says {job.total_tasks}")
        total_tasks += job.total_tasks

    store_entries = len(list((spool / "store").rglob("*.pkl")))
    if store_entries != total_tasks:
        fail(f"store holds {store_entries} payload(s), campaigns ran "
             f"{total_tasks} task(s)")
    leftovers = [p.name for p in inbox.iterdir()]
    if leftovers:
        fail(f"inbox not drained: {leftovers}")

    print(f"serve-smoke: OK — {expected_jobs} jobs, {total_tasks} tasks, "
          "journal/store/results consistent")


if __name__ == "__main__":
    main()
