#!/usr/bin/env python
"""Line coverage for ``src/repro/engine``, without external dependencies.

The container this repo builds in has no ``coverage``/``pytest-cov``
(and the project rules forbid installing any), so ``make coverage`` runs
this instead: a ``sys.settrace``-based line collector scoped to the engine
package. Tracing is enabled only for frames whose code object lives under
the target directory, so the rest of the suite runs at near-full speed.

Usage (what the Makefile does)::

    python tools/engine_coverage.py --floor 80 -- -q tests/test_engine.py ...

Everything after ``--`` is passed to ``pytest.main``. The script prints a
per-module coverage table, then exits non-zero if pytest failed *or* the
total line coverage is below the floor.

Caveats, accounted for in the recorded floor:

* worker *processes* of the engine pool are not traced (only the parent),
  so lines that run exclusively inside pool workers count as uncovered;
* "executable lines" are those carrying bytecode (``co_lines``), which
  includes docstring-assignment lines and excludes blank/comment lines.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from pathlib import Path
from types import CodeType

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGET = REPO_ROOT / "src" / "repro" / "engine"


def executable_lines(path: Path) -> set:
    """Line numbers carrying bytecode anywhere in the module."""
    code = compile(path.read_text(), str(path), "exec")
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _start, _end, line in obj.co_lines():
            if line is not None:
                lines.add(line)
        for const in obj.co_consts:
            if isinstance(const, CodeType):
                stack.append(const)
    return lines


class Collector:
    """Executed-line recorder; local tracing only inside target files."""

    def __init__(self, target_dir: Path) -> None:
        self.prefix = str(target_dir.resolve()) + os.sep
        self.hits = {}  # filename -> set of executed lines

    def global_trace(self, frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(self.prefix):
            return None  # skip local tracing for foreign code entirely
        return self.local_trace

    def local_trace(self, frame, event, arg):
        if event == "line":
            self.hits.setdefault(
                frame.f_code.co_filename, set()
            ).add(frame.f_lineno)
        return self.local_trace

    def install(self) -> None:
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="pytest under line coverage of src/repro/engine"
    )
    parser.add_argument("--floor", type=float, default=0.0,
                        help="minimum total coverage percent (exit 1 below)")
    parser.add_argument("--target", default=str(DEFAULT_TARGET),
                        help="directory whose .py files are measured")
    parser.add_argument("pytest_args", nargs="*",
                        help="arguments after -- go to pytest.main")
    args = parser.parse_args(argv)

    target = Path(args.target).resolve()
    sources = sorted(target.rglob("*.py"))
    if not sources:
        print(f"no python sources under {target}", file=sys.stderr)
        return 2

    import pytest

    collector = Collector(target)
    collector.install()
    try:
        pytest_rc = pytest.main(args.pytest_args)
    finally:
        collector.uninstall()

    total_executable = 0
    total_hit = 0
    rows = []
    for path in sources:
        lines = executable_lines(path)
        hit = collector.hits.get(str(path), set()) & lines
        total_executable += len(lines)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(lines) if lines else 100.0
        rows.append((path.relative_to(REPO_ROOT), len(hit), len(lines), pct))

    total_pct = (
        100.0 * total_hit / total_executable if total_executable else 100.0
    )
    width = max(len(str(r[0])) for r in rows)
    print()
    print(f"{'module':<{width}}  {'hit':>5}  {'lines':>5}  {'cover':>6}")
    for rel, hit, lines, pct in rows:
        print(f"{str(rel):<{width}}  {hit:>5}  {lines:>5}  {pct:>5.1f}%")
    print(f"{'TOTAL':<{width}}  {total_hit:>5}  {total_executable:>5}  "
          f"{total_pct:>5.1f}%")

    if pytest_rc != 0:
        print(f"\npytest exited {pytest_rc}", file=sys.stderr)
        return int(pytest_rc) or 1
    if total_pct < args.floor:
        print(
            f"\ncoverage {total_pct:.1f}% is below the recorded floor "
            f"{args.floor:.1f}%",
            file=sys.stderr,
        )
        return 1
    print(f"\ncoverage {total_pct:.1f}% meets the floor {args.floor:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
