PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Recorded line-coverage floor for src/repro/engine (the chaos suite
# drives the supervise/faults recovery paths; benchmark.py is exercised by
# `make bench`, not unit tests, and counts honestly against the total).
# Raised from 76 with the analysis suite (stagecache fingerprints, locks,
# journal writer guards ride along with the linter's regression tests);
# raised from 77 with the batch-simulator suite (task batching, store-set
# addressing, and a smoke over the benchmark's batch leg).
ENGINE_COV_FLOOR ?= 78

.PHONY: help test test-fast lint check coverage chaos serve-smoke bench \
	bench-full benchmarks

help:
	@echo "targets:"
	@echo "  make test       - full tier-1 pytest suite"
	@echo "  make test-fast  - tier-1 suite minus the 'slow' marker"
	@echo "                    (annealer/simulator/experiment-heavy tests)"
	@echo "  make lint       - contract linter (repro.analysis): stage input"
	@echo "                    declarations, determinism, pickling safety,"
	@echo "                    lock discipline, stage salts"
	@echo "  make check      - compileall smoke + contract linter + full"
	@echo "                    tier-1 suite"
	@echo "  make coverage   - engine-focused tests under line coverage of"
	@echo "                    src/repro/engine; fails below $(ENGINE_COV_FLOOR)%"
	@echo "  make chaos      - fault-injection suite: every supervision"
	@echo "                    recovery path under injected faults, plus"
	@echo "                    the campaign service killed and resumed"
	@echo "  make serve-smoke- end-to-end campaign service smoke (submit,"
	@echo "                    drain, journal/store consistency)"
	@echo "  make bench      - CI-friendly engine scaling + floorplan anneal"
	@echo "                    benchmark (writes BENCH_engine.json)"
	@echo "  make bench-full - full engine scaling benchmark"
	@echo "  make benchmarks - paper-figure benchmark harness (slow)"

test:
	$(PYTHON) -m pytest -x -q

# Skips tests marked @pytest.mark.slow (floorplan annealer, cycle-accurate
# simulator, full experiment regenerations) for a quick inner loop.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# The contract linter: every RPL### invariant (stage input declarations,
# determinism, pickling safety, lock discipline, stage salts) over
# src/repro. Exits non-zero on any unsuppressed finding.
lint:
	$(PYTHON) -m repro.cli lint

# The CI gate: a whole-tree import/compile smoke, the contract linter
# (which subsumes the old stage-salt check), then the full suite.
check:
	$(PYTHON) -m compileall -q src
	$(PYTHON) -m repro.cli lint
	$(PYTHON) -m pytest -x -q

# Engine coverage gate: settrace-based line coverage (no external coverage
# package in the container), failing under the recorded floor.
coverage:
	$(PYTHON) tools/engine_coverage.py --floor $(ENGINE_COV_FLOOR) -- -q \
	    tests/test_engine.py tests/test_store.py tests/test_profile.py \
	    tests/test_cache_cli.py tests/test_stagecache.py \
	    tests/test_paths_micro_bench.py tests/test_faults.py \
	    tests/test_locks.py tests/test_journal.py \
	    tests/test_campaign_spec.py tests/test_campaign_service.py \
	    tests/test_analysis.py

# The chaos gate: retries, deadlines, quarantine, Ctrl-C and resume under
# deterministic injected faults (transient failures, worker crashes,
# hangs), plus the service-level suite: a campaign service killed at
# exact points (journal append, batch entry, job boundary, mid-eviction)
# and resumed bit-identically.
chaos:
	$(PYTHON) -m pytest -x -q tests/test_faults.py \
	    tests/test_service_chaos.py tests/test_locks.py

# End-to-end campaign service smoke through the real CLI: three specs
# submitted (plus one refused), served to drain, then journal, store,
# result files and inbox checked for mutual consistency.
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

# CI-friendly engine scaling benchmark; writes BENCH_engine.json.
bench:
	$(PYTHON) -m repro.cli bench --quick

bench-full:
	$(PYTHON) -m repro.cli bench

# The full paper-figure benchmark harness (slow). Explicit file list:
# bench_*.py does not match pytest's default test-file pattern.
benchmarks:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q -s
