PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-full benchmarks

test:
	$(PYTHON) -m pytest -x -q

# CI-friendly engine scaling benchmark; writes BENCH_engine.json.
bench:
	$(PYTHON) -m repro.cli bench --quick

bench-full:
	$(PYTHON) -m repro.cli bench

# The full paper-figure benchmark harness (slow). Explicit file list:
# bench_*.py does not match pytest's default test-file pattern.
benchmarks:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q -s
