PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: help test test-fast check bench bench-full benchmarks

help:
	@echo "targets:"
	@echo "  make test       - full tier-1 pytest suite"
	@echo "  make test-fast  - tier-1 suite minus the 'slow' marker"
	@echo "                    (annealer/simulator/experiment-heavy tests)"
	@echo "  make check      - compileall smoke + full tier-1 suite"
	@echo "  make bench      - CI-friendly engine scaling + floorplan anneal"
	@echo "                    benchmark (writes BENCH_engine.json)"
	@echo "  make bench-full - full engine scaling benchmark"
	@echo "  make benchmarks - paper-figure benchmark harness (slow)"

test:
	$(PYTHON) -m pytest -x -q

# Skips tests marked @pytest.mark.slow (floorplan annealer, cycle-accurate
# simulator, full experiment regenerations) for a quick inner loop.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# The CI gate: a whole-tree import/compile smoke, then the full suite.
check:
	$(PYTHON) -m compileall -q src
	$(PYTHON) -m pytest -x -q

# CI-friendly engine scaling benchmark; writes BENCH_engine.json.
bench:
	$(PYTHON) -m repro.cli bench --quick

bench-full:
	$(PYTHON) -m repro.cli bench

# The full paper-figure benchmark harness (slow). Explicit file list:
# bench_*.py does not match pytest's default test-file pattern.
benchmarks:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q -s
